(* Reading and analyzing JSONL traces.

   The inverse of [Sink.jsonl]: parse a trace back into span/event
   records, rebuild the span hierarchy (spans are emitted when they
   close, so children precede parents and nesting is recovered from
   the recorded depths), and render the three views the trace tooling
   offers: a where-the-time-went tree, a numerical-health summary, and
   a diff of two runs.  All renderers return strings; printing is the
   caller's business. *)

type record =
  | Span of Sink.span_record
  | Event of Sink.event_record
  | Scope of Sink.scope_record

type item = Node of Sink.span_record * item list | Leaf of Sink.event_record

type t = {
  roots : item list;
  spans : Sink.span_record list;  (* emission order *)
  events : Sink.event_record list;  (* emission order *)
  scopes : Sink.scope_record list;  (* emission order *)
}

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing.                                                           *)

let record_of_json j : record =
  match Json.(to_str (member_exn "type" j)) with
  | "span" ->
    let counters =
      Json.(to_obj (member_exn "counters" j))
      |> List.map (fun (k, v) -> (k, Json.to_int v))
    in
    (* GC telemetry rides as flat prof.* members; traces written before
       prof capture existed simply have none, and Prof.of_fields maps
       that to None. *)
    let prof =
      Json.to_obj j
      |> List.filter_map (fun (k, v) ->
             if String.length k > 5 && String.sub k 0 5 = "prof." then
               match v with
               | Json.Num f -> Some (String.sub k 5 (String.length k - 5), f)
               | _ -> None
             else None)
      |> Prof.of_fields
    in
    (* Cost deltas ride as flat cost.* members; traces written before
       the cost layer existed simply have none. *)
    let cost =
      Json.to_obj j
      |> List.filter_map (fun (k, v) ->
             if String.length k > 5 && String.sub k 0 5 = "cost." then
               match v with
               | Json.Num f ->
                 Some (String.sub k 5 (String.length k - 5), int_of_float f)
               | _ -> None
             else None)
    in
    Span
      {
        Sink.name = Json.(to_str (member_exn "name" j));
        depth = Json.(to_int (member_exn "depth" j));
        start = Json.(to_num (member_exn "start" j));
        dur = Json.(to_num (member_exn "dur" j));
        counters;
        cost;
        prof;
      }
  | "event" ->
    Event
      {
        Sink.name = Json.(to_str (member_exn "name" j));
        depth = Json.(to_int (member_exn "depth" j));
        time = Json.(to_num (member_exn "time" j));
        detail = Json.(to_str (member_exn "detail" j));
      }
  | "scope" ->
    (* Same wire shape as a span minus prof.*; see Sink.scope_to_json. *)
    let counters =
      Json.(to_obj (member_exn "counters" j))
      |> List.map (fun (k, v) -> (k, Json.to_int v))
    in
    let cost =
      Json.to_obj j
      |> List.filter_map (fun (k, v) ->
             if String.length k > 5 && String.sub k 0 5 = "cost." then
               match v with
               | Json.Num f ->
                 Some (String.sub k 5 (String.length k - 5), int_of_float f)
               | _ -> None
             else None)
    in
    Scope
      {
        Sink.name = Json.(to_str (member_exn "name" j));
        depth = Json.(to_int (member_exn "depth" j));
        start = Json.(to_num (member_exn "start" j));
        dur = Json.(to_num (member_exn "dur" j));
        counters;
        cost;
      }
  | other -> malformed "unknown record type %S" other

let parse_line line =
  match record_of_json (Json.parse line) with
  | r -> r
  | exception Json.Parse_error m -> malformed "%s in %S" m line

(* Rebuild the hierarchy.  A span record at depth [d] closes after all
   its children (spans and events recorded at depth [d+1]) have been
   emitted, so a single pass with one pending-items bucket per depth
   recovers the tree.  Items still pending at the end (a truncated
   trace) are kept as extra roots rather than dropped. *)
let build (records : record list) : item list =
  let pending : (int, item list ref) Hashtbl.t = Hashtbl.create 8 in
  let bucket d =
    match Hashtbl.find_opt pending d with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add pending d r;
      r
  in
  List.iter
    (fun r ->
      match r with
      (* Scope depths are per-domain, so concurrent scopes interleave
         arbitrarily — they stay out of the single-stack span tree. *)
      | Scope _ -> ()
      | Event e ->
        let b = bucket e.Sink.depth in
        b := Leaf e :: !b
      | Span s ->
        let kids =
          match Hashtbl.find_opt pending (s.Sink.depth + 1) with
          | Some r ->
            let k = List.rev !r in
            r := [];
            k
          | None -> []
        in
        let b = bucket s.Sink.depth in
        b := Node (s, kids) :: !b)
    records;
  let roots =
    match Hashtbl.find_opt pending 0 with
    | Some r ->
      let k = List.rev !r in
      r := [];
      k
    | None -> []
  in
  let orphans =
    Hashtbl.fold
      (fun d r acc -> if !r <> [] then (d, List.rev !r) :: acc else acc)
      pending []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.concat_map snd
  in
  roots @ orphans

let of_records records =
  {
    roots = build records;
    spans = List.filter_map (function Span s -> Some s | _ -> None) records;
    events = List.filter_map (function Event e -> Some e | _ -> None) records;
    scopes = List.filter_map (function Scope s -> Some s | _ -> None) records;
  }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let records = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then records := parse_line line :: !records
         done
       with End_of_file -> ());
      of_records (List.rev !records))

(* ------------------------------------------------------------------ *)
(* Where-the-time-went tree.                                          *)

let format_counters counters =
  counters
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
  |> String.concat " "

(* Point events inside a span are aggregated by name ([health.arnoldi]
   fires once per Krylov iteration); recovery events are rare and
   individually meaningful, so those keep their detail line. *)
let render_tree ?(max_depth = max_int) t =
  let b = Buffer.create 1024 in
  let pad depth = String.make (2 * depth) ' ' in
  let rec item depth it =
    if depth <= max_depth then
      match it with
      | Node (s, kids) ->
        Buffer.add_string b
          (Printf.sprintf "%s%-*s %8.3fs  %s\n" (pad depth)
             (max 1 (30 - (2 * depth)))
             s.Sink.name s.Sink.dur
             (format_counters s.Sink.counters));
        let leaves, nodes =
          List.partition (function Leaf _ -> true | Node _ -> false) kids
        in
        let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (fun it ->
            match it with
            | Leaf (e : Sink.event_record) ->
              if e.Sink.name = "recovery" then
                Buffer.add_string b
                  (Printf.sprintf "%s! %s %s\n" (pad (depth + 1)) e.Sink.name
                     e.Sink.detail)
              else begin
                if not (Hashtbl.mem counts e.Sink.name) then
                  order := e.Sink.name :: !order;
                Hashtbl.replace counts e.Sink.name
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.Sink.name))
              end
            | Node _ -> ())
          leaves;
        List.iter
          (fun name ->
            Buffer.add_string b
              (Printf.sprintf "%s. %s x%d\n" (pad (depth + 1)) name
                 (Hashtbl.find counts name)))
          (List.rev !order);
        List.iter (item (depth + 1)) nodes
      | Leaf e ->
        Buffer.add_string b
          (Printf.sprintf "%s. %s %s\n" (pad depth) e.Sink.name e.Sink.detail)
  in
  List.iter (item 0) t.roots;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Numerical-health summary.                                          *)

let health_records t : Health.record list =
  List.filter_map
    (fun (e : Sink.event_record) ->
      Health.of_event ~name:e.Sink.name ~detail:e.Sink.detail)
    t.events

type health_summary = {
  worst_ortho : (string * int * float) option;  (* context, iter, loss *)
  min_margin : (string * int * float) option;  (* context, iter, margin *)
  max_cond : (string * int * float) list;  (* per context: dim, cond *)
  streaks : (string * float * int) list;  (* context, time, length *)
  residuals : (int * float * float) list;  (* k, s0, residual — last per k *)
  freq_worst : (float * float) option;  (* omega, rel_err *)
  freq_samples : int;
  pod : (int * int * float * float) option;  (* retained, total, energy, tail *)
}

let summarize t : health_summary =
  let worst_ortho = ref None
  and min_margin = ref None
  and max_cond : (string, int * float) Hashtbl.t = Hashtbl.create 4
  and streaks = ref []
  and residuals : (int, float * float) Hashtbl.t = Hashtbl.create 4
  and freq_worst = ref None
  and freq_samples = ref 0
  and pod = ref None in
  List.iter
    (fun (r : Health.record) ->
      match r with
      | Health.Arnoldi { context; iteration; ortho_loss; defl_margin; _ } ->
        (match !worst_ortho with
        | Some (_, _, best) when best >= ortho_loss -> ()
        | _ -> worst_ortho := Some (context, iteration, ortho_loss));
        (match !min_margin with
        | Some (_, _, best) when best <= defl_margin -> ()
        | _ -> min_margin := Some (context, iteration, defl_margin))
      | Health.Cond { context; dim; cond } -> (
        match Hashtbl.find_opt max_cond context with
        | Some (_, c) when c >= cond -> ()
        | _ -> Hashtbl.replace max_cond context (dim, cond))
      | Health.Ode_streak { context; time; length } ->
        streaks := (context, time, length) :: !streaks
      | Health.Moment_residual { k; s0; residual } ->
        Hashtbl.replace residuals k (s0, residual)
      | Health.Freq_error { omega; rel_err } ->
        incr freq_samples;
        (match !freq_worst with
        | Some (_, worst) when worst >= rel_err -> ()
        | _ -> freq_worst := Some (omega, rel_err))
      | Health.Pod_spectrum { retained; total; energy; tail } ->
        pod := Some (retained, total, energy, tail))
    (health_records t);
  {
    worst_ortho = !worst_ortho;
    min_margin = !min_margin;
    max_cond =
      Hashtbl.fold (fun ctx (d, c) acc -> (ctx, d, c) :: acc) max_cond []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b);
    streaks = List.rev !streaks;
    residuals =
      Hashtbl.fold (fun k (s0, r) acc -> (k, s0, r) :: acc) residuals []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b);
    freq_worst = !freq_worst;
    freq_samples = !freq_samples;
    pod = !pod;
  }

let render_health t =
  let s = summarize t in
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun m -> Buffer.add_string b (m ^ "\n")) fmt in
  line "numerical health";
  line "%s" (String.make 46 '-');
  let any = ref false in
  (match s.worst_ortho with
  | Some (ctx, it, loss) ->
    any := true;
    line "  worst orthogonality loss  %.3g  (%s, iter %d)" loss ctx it
  | None -> ());
  (match s.min_margin with
  | Some (ctx, it, margin) ->
    any := true;
    line "  min deflation margin      %.3g  (%s, iter %d)" margin ctx it
  | None -> ());
  List.iter
    (fun (ctx, dim, cond) ->
      any := true;
      line "  cond estimate             %.3g  (%s, n=%d)" cond ctx dim)
    s.max_cond;
  let heavy = List.filter (fun (_, _, len) -> len >= 3) s.streaks in
  if heavy <> [] then begin
    any := true;
    line "  rejection-heavy ODE windows (streak >= 3):";
    List.iteri
      (fun i (ctx, time, len) ->
        if i < 5 then line "    %s: %d rejected near t=%.4g" ctx len time)
      heavy;
    if List.length heavy > 5 then
      line "    ... and %d more" (List.length heavy - 5)
  end;
  if s.residuals <> [] then begin
    any := true;
    line "  moment-match residuals at s0:";
    List.iter
      (fun (k, s0, r) -> line "    H%d(s0=%.4g)  rel residual %.3g" k s0 r)
      s.residuals
  end;
  (match s.freq_worst with
  | Some (omega, err) ->
    any := true;
    line "  freq sweep (%d pts)        worst rel err %.3g at omega=%.4g"
      s.freq_samples err omega
  | None -> ());
  (match s.pod with
  | Some (retained, total, energy, tail) ->
    any := true;
    line "  POD spectrum              %d/%d modes, energy %.8g, tail %.3g"
      retained total energy tail
  | None -> ());
  if not !any then line "  (no health events recorded)";
  line "%s" (String.make 46 '-');
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Exclusive-time and allocation attribution.

   Span durations and GC deltas are inclusive of children; exclusive
   cost is self minus the sum over direct child spans, clamped at zero
   (clock skew between a parent and its children can make the raw
   difference slightly negative).  Aggregated per span name across the
   whole trace. *)

type attrib = {
  span : string;
  calls : int;
  incl_s : float;
  excl_s : float;
  incl_minor_words : float;
  excl_minor_words : float;
  incl_major_words : float;
  excl_major_words : float;
  incl_flops : int;
  excl_flops : int;
  incl_bytes : int;
  excl_bytes : int;
}

(* Per-span cost deltas carry the full Cost key set; the attribution
   views only need the flop total and the byte total. *)
let span_flops (s : Sink.span_record) =
  List.fold_left
    (fun acc (k, v) ->
      match Cost.of_name k with
      | Some c when Cost.is_flops c -> acc + v
      | _ -> acc)
    0 s.Sink.cost

let span_bytes (s : Sink.span_record) =
  List.fold_left
    (fun acc (k, v) ->
      match Cost.of_name k with
      | Some c when not (Cost.is_flops c) -> acc + v
      | _ -> acc)
    0 s.Sink.cost

(* Derived flops-per-second.  A zero-duration span (the clock's
   resolution is finite; tiny spans really do record dur = 0) has no
   meaningful rate, so render "n/a" — the same guard shape as
   [pct_change]'s zero baseline. *)
let flops_rate ~flops ~seconds =
  if not (Float.is_finite seconds) || seconds < 1e-12 then "n/a"
  else Printf.sprintf "%.3g" (float_of_int flops /. seconds)

let attribution t : attrib list =
  let tbl : (string, attrib) Hashtbl.t = Hashtbl.create 16 in
  let prof_minor (s : Sink.span_record) =
    match s.Sink.prof with Some p -> p.Prof.minor_words | None -> 0.0
  and prof_major (s : Sink.span_record) =
    match s.Sink.prof with Some p -> p.Prof.major_words | None -> 0.0
  in
  let rec walk = function
    | Leaf _ -> ()
    | Node (s, kids) ->
      let child_dur = ref 0.0 and child_minor = ref 0.0 and child_major = ref 0.0 in
      let child_flops = ref 0 and child_bytes = ref 0 in
      List.iter
        (function
          | Node (c, _) ->
            child_dur := !child_dur +. c.Sink.dur;
            child_minor := !child_minor +. prof_minor c;
            child_major := !child_major +. prof_major c;
            child_flops := !child_flops + span_flops c;
            child_bytes := !child_bytes + span_bytes c
          | Leaf _ -> ())
        kids;
      let excl v children = Float.max 0.0 (v -. children) in
      let excl_i v children = max 0 (v - children) in
      let a =
        match Hashtbl.find_opt tbl s.Sink.name with
        | Some a -> a
        | None ->
          {
            span = s.Sink.name;
            calls = 0;
            incl_s = 0.0;
            excl_s = 0.0;
            incl_minor_words = 0.0;
            excl_minor_words = 0.0;
            incl_major_words = 0.0;
            excl_major_words = 0.0;
            incl_flops = 0;
            excl_flops = 0;
            incl_bytes = 0;
            excl_bytes = 0;
          }
      in
      Hashtbl.replace tbl s.Sink.name
        {
          a with
          calls = a.calls + 1;
          incl_s = a.incl_s +. s.Sink.dur;
          excl_s = a.excl_s +. excl s.Sink.dur !child_dur;
          incl_minor_words = a.incl_minor_words +. prof_minor s;
          excl_minor_words =
            a.excl_minor_words +. excl (prof_minor s) !child_minor;
          incl_major_words = a.incl_major_words +. prof_major s;
          excl_major_words =
            a.excl_major_words +. excl (prof_major s) !child_major;
          incl_flops = a.incl_flops + span_flops s;
          excl_flops = a.excl_flops + excl_i (span_flops s) !child_flops;
          incl_bytes = a.incl_bytes + span_bytes s;
          excl_bytes = a.excl_bytes + excl_i (span_bytes s) !child_bytes;
        };
      List.iter walk kids
  in
  List.iter walk t.roots;
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun a b -> compare b.excl_s a.excl_s)

let render_hot ?(top = 10) t =
  let rows = attribution t in
  let shown = List.filteri (fun i _ -> i < top) rows in
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun m -> Buffer.add_string b (m ^ "\n")) fmt in
  line "hot kernels (exclusive time, top %d of %d)" (List.length shown)
    (List.length rows);
  line "%-28s %6s %10s %10s %12s %12s %12s %12s %9s" "span" "calls" "excl s"
    "incl s" "excl minor w" "excl major w" "excl flops" "excl bytes" "flops/s";
  line "%s" (String.make 118 '-');
  List.iter
    (fun a ->
      line "%-28s %6d %10.4f %10.4f %12.3g %12.3g %12d %12d %9s" a.span
        a.calls a.excl_s a.incl_s a.excl_minor_words a.excl_major_words
        a.excl_flops a.excl_bytes
        (flops_rate ~flops:a.excl_flops ~seconds:a.excl_s))
    shown;
  if rows = [] then line "  (no spans recorded)";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (chrome://tracing, Perfetto).

   Spans become "X" (complete) events with microsecond timestamps
   normalized to the earliest record; point events become instant
   events ("i", thread-scoped).  Everything runs on pid 1 / tid 1 —
   the tracer is single-threaded and nesting is reconstructed by the
   viewer from ts/dur containment. *)

let chrome_ts t0 time = (time -. t0) *. 1e6

let to_chrome t : Json.t =
  let t0 =
    List.fold_left
      (fun acc (s : Sink.span_record) -> Float.min acc s.Sink.start)
      (List.fold_left
         (fun acc (e : Sink.event_record) -> Float.min acc e.Sink.time)
         Float.infinity t.events)
      t.spans
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let span_event (s : Sink.span_record) =
    let args =
      (("depth", Json.Num (float_of_int s.Sink.depth))
      :: List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) s.Sink.counters)
      @ List.map
          (fun (k, v) -> ("cost." ^ k, Json.Num (float_of_int v)))
          s.Sink.cost
      @
      match s.Sink.prof with
      | None -> []
      | Some p ->
        List.map (fun (k, v) -> ("prof." ^ k, Json.Num v)) (Prof.fields p)
    in
    Json.Obj
      [
        ("name", Json.Str s.Sink.name);
        ("cat", Json.Str "span");
        ("ph", Json.Str "X");
        ("ts", Json.Num (chrome_ts t0 s.Sink.start));
        ("dur", Json.Num (s.Sink.dur *. 1e6));
        ("pid", Json.Num 1.0);
        ("tid", Json.Num 1.0);
        ("args", Json.Obj args);
      ]
  in
  let point_event (e : Sink.event_record) =
    Json.Obj
      [
        ("name", Json.Str e.Sink.name);
        ("cat", Json.Str "event");
        ("ph", Json.Str "i");
        ("ts", Json.Num (chrome_ts t0 e.Sink.time));
        ("pid", Json.Num 1.0);
        ("tid", Json.Num 1.0);
        ("s", Json.Str "t");
        ( "args",
          Json.Obj
            [
              ("depth", Json.Num (float_of_int e.Sink.depth));
              ("detail", Json.Str e.Sink.detail);
            ] );
      ]
  in
  let ts = function
    | Json.Obj fields -> (
      match List.assoc_opt "ts" fields with Some (Json.Num f) -> f | _ -> 0.0)
    | _ -> 0.0
  in
  let events =
    List.map span_event t.spans @ List.map point_event t.events
    |> List.stable_sort (fun a b -> compare (ts a) (ts b))
  in
  Json.Obj
    [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ]

let chrome_string t = Json.render (to_chrome t)

let validate_chrome (j : Json.t) =
  let check = function
    | Json.Obj fields as ev ->
      let str k =
        match List.assoc_opt k fields with
        | Some (Json.Str s) -> s
        | Some v -> malformed "event %S: %S is %s, not a string" (Json.render ev) k (Json.kind v)
        | None -> malformed "event %S: missing %S" (Json.render ev) k
      in
      let num k =
        match List.assoc_opt k fields with
        | Some (Json.Num f) -> f
        | Some v -> malformed "event %S: %S is %s, not a number" (Json.render ev) k (Json.kind v)
        | None -> malformed "event %S: missing %S" (Json.render ev) k
      in
      let _ = str "name" and ph = str "ph" in
      let ts = num "ts" and _ = num "pid" and _ = num "tid" in
      if not (Float.is_finite ts) then malformed "non-finite ts";
      if ph = "X" then begin
        let dur = num "dur" in
        if not (Float.is_finite dur && dur >= 0.0) then
          malformed "ph=X event with invalid dur"
      end
    | v -> malformed "trace event is %s, not an object" (Json.kind v)
  in
  match j with
  | Json.Obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Json.Arr []) -> malformed "empty traceEvents"
    | Some (Json.Arr evs) -> List.iter check evs
    | Some v -> malformed "traceEvents is %s, not an array" (Json.kind v)
    | None -> malformed "missing traceEvents")
  | v -> malformed "chrome trace is %s, not an object" (Json.kind v)

(* ------------------------------------------------------------------ *)
(* Folded-stack export (flamegraph.pl, speedscope).

   One line per unique call stack, "root;child;leaf count", where the
   count is the stack's exclusive time in integer microseconds.
   Exclusive values are computed from the *rounded* inclusive values,
   so the counts sum exactly to the total root inclusive time whenever
   children nest within their parents. *)

let folded_name name =
  String.map (function ' ' -> '_' | ';' -> ':' | c -> c) name

let to_folded t =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let micros dur = int_of_float (Float.round (dur *. 1e6)) in
  let rec walk prefix = function
    | Leaf _ -> ()
    | Node (s, kids) ->
      let stack =
        if prefix = "" then folded_name s.Sink.name
        else prefix ^ ";" ^ folded_name s.Sink.name
      in
      let child_us =
        List.fold_left
          (fun acc -> function
            | Node (c, _) -> acc + micros c.Sink.dur
            | Leaf _ -> acc)
          0 kids
      in
      let excl = max 0 (micros s.Sink.dur - child_us) in
      if excl > 0 then begin
        if not (Hashtbl.mem tbl stack) then order := stack :: !order;
        Hashtbl.replace tbl stack
          (excl + Option.value ~default:0 (Hashtbl.find_opt tbl stack))
      end;
      List.iter (walk stack) kids
  in
  List.iter (walk "") t.roots;
  let b = Buffer.create 512 in
  List.iter
    (fun stack ->
      Buffer.add_string b
        (Printf.sprintf "%s %d\n" stack (Hashtbl.find tbl stack)))
    (List.rev !order);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Diffing two traces.                                                *)

let span_totals t : (string * (int * float)) list =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Sink.span_record) ->
      let n, d =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl s.Sink.name)
      in
      Hashtbl.replace tbl s.Sink.name (n + 1, d +. s.Sink.dur))
    t.spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, (_, a)) (_, (_, b)) -> compare b a)

(* Kernel counters summed over top-level spans only: span counters are
   inclusive of children, so depth 0 gives whole-run totals without
   double counting. *)
let totals_over_roots project t : (string * int) list =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Sink.span_record) ->
      if s.Sink.depth = 0 then
        List.iter
          (fun (k, v) ->
            Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          (project s))
    t.spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counter_totals t = totals_over_roots (fun s -> s.Sink.counters) t
let cost_totals t = totals_over_roots (fun s -> s.Sink.cost) t

(* Percent delta with a guarded denominator: a zero (or non-finite)
   old value has no meaningful relative change, so render "n/a" rather
   than inf/nan — except 0 -> 0, which really is "=".  "new"/"gone"
   are reserved for entries missing from one side entirely. *)
let pct_change ~old ~fresh =
  if not (Float.is_finite old && Float.is_finite fresh) then "n/a"
  else if Float.abs old < 1e-300 then
    if Float.abs fresh < 1e-300 then "=" else "n/a"
  else Printf.sprintf "%+.1f%%" (100.0 *. ((fresh -. old) /. old))

let render_diff old_t new_t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun m -> Buffer.add_string b (m ^ "\n")) fmt in
  let old_spans = span_totals old_t and new_spans = span_totals new_t in
  let names =
    List.sort_uniq compare (List.map fst old_spans @ List.map fst new_spans)
  in
  line "%-30s %10s %10s %9s" "span (total)" "old s" "new s" "delta";
  line "%s" (String.make 62 '-');
  (* order by new total duration, descending; old-only names last *)
  let key name =
    match List.assoc_opt name new_spans with
    | Some (_, d) -> -.d
    | None -> Float.infinity
  in
  List.iter
    (fun name ->
      let fmt_tot = function
        | Some (n, d) -> Printf.sprintf "%8.3f/%d" d n
        | None -> "-"
      in
      let old_v = List.assoc_opt name old_spans
      and new_v = List.assoc_opt name new_spans in
      let delta =
        match (old_v, new_v) with
        | Some (_, od), Some (_, nd) -> pct_change ~old:od ~fresh:nd
        | None, Some _ -> "new"
        | Some _, None -> "gone"
        | None, None -> "="
      in
      line "%-30s %10s %10s %9s" name (fmt_tot old_v) (fmt_tot new_v) delta)
    (List.sort (fun a b -> compare (key a) (key b)) names);
  let int_table ~header old_c new_c =
    let cnames =
      List.sort_uniq compare (List.map fst old_c @ List.map fst new_c)
    in
    if cnames <> [] then begin
      line "";
      line "%-30s %13s %13s %9s" header "old" "new" "delta";
      line "%s" (String.make 68 '-');
      List.iter
        (fun name ->
          let ov = Option.value ~default:0 (List.assoc_opt name old_c)
          and nv = Option.value ~default:0 (List.assoc_opt name new_c) in
          line "%-30s %13d %13d %9s" name ov nv
            (pct_change ~old:(float_of_int ov) ~fresh:(float_of_int nv)))
        cnames
    end
  in
  int_table ~header:"counter" (counter_totals old_t) (counter_totals new_t);
  int_table ~header:"cost" (cost_totals old_t) (cost_totals new_t);
  (* headline health, old vs new *)
  let os = summarize old_t and ns = summarize new_t in
  let health_rows =
    [
      ( "worst ortho loss",
        Option.map (fun (_, _, v) -> v) os.worst_ortho,
        Option.map (fun (_, _, v) -> v) ns.worst_ortho );
      ( "max cond estimate",
        (match os.max_cond with
        | [] -> None
        | l -> Some (List.fold_left (fun a (_, _, c) -> Float.max a c) 0.0 l)),
        match ns.max_cond with
        | [] -> None
        | l -> Some (List.fold_left (fun a (_, _, c) -> Float.max a c) 0.0 l) );
    ]
    @ List.map
        (fun k ->
          let get s =
            List.find_map
              (fun (k', _, r) -> if k' = k then Some r else None)
              s.residuals
          in
          (Printf.sprintf "H%d moment residual" k, get os, get ns))
        [ 1; 2; 3 ]
  in
  let shown =
    List.filter (fun (_, o, n) -> o <> None || n <> None) health_rows
  in
  if shown <> [] then begin
    line "";
    line "%-30s %10s %10s %9s" "health" "old" "new" "delta";
    line "%s" (String.make 62 '-');
    List.iter
      (fun (name, o, n) ->
        let fmt = function Some v -> Printf.sprintf "%10.3g" v | None -> "-" in
        let delta =
          match (o, n) with
          | Some ov, Some nv -> pct_change ~old:ov ~fresh:nv
          | None, Some _ -> "new"
          | Some _, None -> "gone"
          | None, None -> "="
        in
        line "%-30s %10s %10s %9s" name (fmt o) (fmt n) delta)
      shown
  end;
  Buffer.contents b
