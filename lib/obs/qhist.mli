(** Deterministic log-linear quantile histograms.

    The backing store for {!Metrics.observe} and for per-span latency
    distributions: a fixed-geometry bucketed histogram per name,
    accumulated per domain ([Domain.DLS] tables merged exactly under a
    mutex — the {!Metrics}/{!Cost} pattern) so concurrent domains
    never contend on the hot path.

    The geometry is {!sub_buckets} linear sub-buckets per power-of-two
    octave over binary exponents [[e_min, e_max)], plus an underflow
    and an overflow bucket.  The bucket index is a pure function of
    the value's bits (exact [frexp]-based mantissa scaling), bucket
    counts are integers, and integer addition is associative — so
    merged bucket counts and every quantile derived from them are
    bit-identical across repeated runs, [--domains 1] vs [4], and
    merge orders.  The float moments ([sum]/[sumsq]) do {e not} carry
    that guarantee (float addition is order-sensitive).  See DESIGN.md
    section 16.

    Buckets cover half-open ranges [[lower, upper)]: a value exactly
    on a dyadic boundary counts toward the higher bucket. *)

val sub_buckets : int
(** Linear sub-buckets per octave (4). *)

val n_buckets : int
(** Total bucket count including underflow (index 0) and overflow
    (index [n_buckets - 1]). *)

val bucket_index : float -> int
(** Bucket for a value.  Values below the range (including zero,
    negatives and NaN) land in the underflow bucket; values at or
    above the top edge (including infinities) in the overflow
    bucket. *)

val upper_bound : int -> float
(** Nominal upper edge of a bucket — the OpenMetrics [le] label.
    [upper_bound (n_buckets - 1)] is [infinity]. *)

val set_enabled : bool -> unit
(** [set_enabled false] turns {!observe} into a no-op (the
    uninstrumented baseline for the overhead benchmark).  Enabled by
    default. *)

val is_enabled : unit -> bool

val observe : string -> float -> unit
(** Feed one observation into the named histogram on the calling
    domain's accumulator: one bucket tick plus count/sum/sumsq/min/max
    updates, lock-free for already-seen names. *)

type view = {
  buckets : int array;  (** merged integer bucket counts, length {!n_buckets} *)
  count : int;
  sum : float;
  sumsq : float;
  minv : float;  (** [infinity] when empty *)
  maxv : float;  (** [neg_infinity] when empty *)
}

val view : string -> view option
(** Merged process-wide histogram for one name; [None] if never
    observed. *)

val all : unit -> (string * view) list
(** Every named histogram, merged, sorted by name. *)

val reset : unit -> unit
(** Zero every registered per-domain histogram (names stay
    registered). *)

val quantile : view -> float -> float
(** [quantile v q] for [q] in [[0, 1]]: locate the [ceil (q * count)]-th
    smallest observation's bucket and interpolate linearly inside it
    by integer rank.  A pure function of the integer bucket counts —
    bit-identical whenever they are.  [nan] when empty; observations
    in the overflow bucket report its lower edge. *)

val mean : view -> float
(** [sum / count]; [nan] when empty. *)

val stddev : view -> float
(** Population standard deviation from [sum]/[sumsq], clamped at zero
    against cancellation; [nan] when empty. *)

val nonzero_buckets : view -> int
(** Number of buckets with a nonzero count — a compact deterministic
    fingerprint of the distribution's shape. *)
