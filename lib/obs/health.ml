(* Numerical-health telemetry.

   The span/counter layer says where the time went; this layer says
   whether the numerics can be trusted.  Each [record] is a typed
   diagnostic produced at a well-defined point of a reduction or
   simulation: per-iteration Arnoldi orthogonality data, condition
   estimates for the shifted solves behind the associated transforms,
   ODE rejection streaks, a-posteriori moment-match residuals of a
   finished ROM, and POD spectrum truncation energy.

   Records ride the existing [Sink] as point events named
   ["health.<kind>"] with a ["key=value ..."] detail string, so a
   single JSONL trace carries timing, counters, recovery actions and
   numerical health together.  The null-sink fast path is preserved:
   producers must guard any nontrivial diagnostic computation with
   [active ()], and [emit] itself is a no-op under the null sink.

   Alongside the (sink-gated) events, [emit] folds headline values
   into [Metrics] histograms/gauges so `vmor trace`'s summary and the
   CSV export surface worst-case health without trace parsing. *)

type record =
  | Arnoldi of {
      context : string;  (* which Krylov loop, e.g. "arnoldi.run" *)
      iteration : int;
      ortho_loss : float;  (* ||V^T V - I||_max over the current basis *)
      subdiag : float;  (* Hessenberg subdiagonal magnitude h_{j+1,j} *)
      defl_margin : float;  (* subdiag / deflation threshold; <= 1 deflates *)
    }
  | Cond of {
      context : string;  (* which operator, e.g. "assoc.resolvent" *)
      dim : int;
      cond : float;  (* 1-norm condition estimate *)
    }
  | Ode_streak of {
      context : string;  (* integrator name *)
      time : float;  (* model time where the streak ended *)
      length : int;  (* consecutive rejected steps *)
    }
  | Moment_residual of {
      k : int;  (* transfer-function order: 1, 2 or 3 *)
      s0 : float;  (* expansion point the ROM was matched at *)
      residual : float;  (* ||H_k^full(s0) - H_k^rom(s0)|| / ||H_k^full(s0)|| *)
    }
  | Freq_error of {
      omega : float;  (* angular frequency of the sample point *)
      rel_err : float;  (* relative H1 error at s0 + i*omega *)
    }
  | Pod_spectrum of {
      retained : int;
      total : int;  (* snapshot count = available modes *)
      energy : float;  (* fraction of spectral energy captured *)
      tail : float;  (* first discarded eigenvalue / largest (decay depth) *)
    }

let active () = Sink.is_active ()

let name_of = function
  | Arnoldi _ -> "health.arnoldi"
  | Cond _ -> "health.cond"
  | Ode_streak _ -> "health.ode_streak"
  | Moment_residual _ -> "health.moment_residual"
  | Freq_error _ -> "health.freq_error"
  | Pod_spectrum _ -> "health.pod"

(* Detail strings are space-separated [key=value] pairs; string values
   are plain tokens (contexts are dotted identifiers, never spaced).
   [%.9g] round-trips every double we care about through the JSONL
   sink and back out of [parse_detail]. *)
let detail_of = function
  | Arnoldi { context; iteration; ortho_loss; subdiag; defl_margin } ->
    Printf.sprintf "context=%s iter=%d ortho_loss=%.9g subdiag=%.9g defl_margin=%.9g"
      context iteration ortho_loss subdiag defl_margin
  | Cond { context; dim; cond } ->
    Printf.sprintf "context=%s dim=%d cond=%.9g" context dim cond
  | Ode_streak { context; time; length } ->
    Printf.sprintf "context=%s time=%.9g length=%d" context time length
  | Moment_residual { k; s0; residual } ->
    Printf.sprintf "k=%d s0=%.9g residual=%.9g" k s0 residual
  | Freq_error { omega; rel_err } ->
    Printf.sprintf "omega=%.9g rel_err=%.9g" omega rel_err
  | Pod_spectrum { retained; total; energy; tail } ->
    Printf.sprintf "retained=%d total=%d energy=%.9g tail=%.9g"
      retained total energy tail

let parse_detail s =
  String.split_on_char ' ' s
  |> List.filter_map (fun tok ->
         match String.index_opt tok '=' with
         | None -> None
         | Some i ->
           Some
             ( String.sub tok 0 i,
               String.sub tok (i + 1) (String.length tok - i - 1) ))

let field fields key = List.assoc_opt key fields

let float_field fields key =
  match field fields key with
  | None -> None
  | Some v -> float_of_string_opt v

(* Headline aggregates: keep the worst value seen per kind in the
   metrics layer, so health shows up in `--metrics` output even when
   nobody parses the trace. *)
let observe_headlines = function
  | Arnoldi { ortho_loss; defl_margin; _ } ->
    Metrics.observe "health.ortho_loss" ortho_loss;
    Metrics.observe "health.defl_margin" defl_margin
  | Cond { cond; _ } -> Metrics.observe "health.cond" cond
  | Ode_streak { length; _ } ->
    Metrics.observe "health.ode_streak" (float_of_int length)
  | Moment_residual { k; residual; _ } ->
    Metrics.set_gauge (Printf.sprintf "health.moment_residual.h%d" k) residual
  | Freq_error { rel_err; _ } -> Metrics.observe "health.freq_error" rel_err
  | Pod_spectrum { energy; _ } -> Metrics.set_gauge "health.pod_energy" energy

let emit r =
  if active () then begin
    observe_headlines r;
    Span.event ~detail:(detail_of r) (name_of r)
  end

(* ------------------------------------------------------------------ *)
(* Recovering records from a parsed trace (used by Trace and the      *)
(* trace_report tool).  Unknown or malformed events yield [None].     *)

let of_event ~name ~detail : record option =
  let fields = parse_detail detail in
  let f = float_field fields in
  let i key = Option.map int_of_float (f key) in
  let str key = field fields key in
  match name with
  | "health.arnoldi" -> (
    match (str "context", i "iter", f "ortho_loss", f "subdiag", f "defl_margin") with
    | Some context, Some iteration, Some ortho_loss, Some subdiag, Some defl_margin ->
      Some (Arnoldi { context; iteration; ortho_loss; subdiag; defl_margin })
    | _ -> None)
  | "health.cond" -> (
    match (str "context", i "dim", f "cond") with
    | Some context, Some dim, Some cond -> Some (Cond { context; dim; cond })
    | _ -> None)
  | "health.ode_streak" -> (
    match (str "context", f "time", i "length") with
    | Some context, Some time, Some length ->
      Some (Ode_streak { context; time; length })
    | _ -> None)
  | "health.moment_residual" -> (
    match (i "k", f "s0", f "residual") with
    | Some k, Some s0, Some residual -> Some (Moment_residual { k; s0; residual })
    | _ -> None)
  | "health.freq_error" -> (
    match (f "omega", f "rel_err") with
    | Some omega, Some rel_err -> Some (Freq_error { omega; rel_err })
    | _ -> None)
  | "health.pod" -> (
    match (i "retained", i "total", f "energy", f "tail") with
    | Some retained, Some total, Some energy, Some tail ->
      Some (Pod_spectrum { retained; total; energy; tail })
    | _ -> None)
  | _ -> None
