(* Deterministic log-linear quantile histograms.

   The same per-domain accumulator design as [Metrics]/[Cost], but the
   accumulated value is a fixed-geometry bucketed histogram per name:
   each domain owns a (name -> local) table held in a [Domain.DLS]
   slot, observations tick integer bucket counters in the owner's
   table without any lock, and readers merge every registered table
   under [mu].

   Bucket geometry is fixed at compile time and value-independent:
   [sub_buckets] linear sub-buckets per power-of-two octave over the
   exponent range [e_min, e_max), plus one underflow and one overflow
   bucket.  The sub-bucket index comes from [Float.frexp]: for
   v = m * 2^e with m in [0.5, 1), the scaled mantissa 2m - 1 is exact
   (Sterbenz subtraction of values within a factor of two) and the
   multiplication by [sub_buckets] (a power of two) is exact, so the
   bucket index is a pure function of the value's bits — no rounding
   mode, no library, no platform dependence.  Bucket counts are
   integers and integer addition is associative, so the merged counts
   (and every quantile derived from them) are bit-identical across
   runs, domain counts and merge orders.  The float moments
   (sum/sumsq) are *not* order-exact: float addition is not
   associative, so only the bucket counts and quantiles carry the
   determinism guarantee (DESIGN.md section 16).

   A bucket covers the half-open interval [lower, upper): a value
   exactly on a dyadic boundary counts toward the higher bucket.  The
   rendered [le] labels are the nominal upper edges. *)

let sub_buckets = 4
let e_min = -40
let e_max = 40

let n_buckets = ((e_max - e_min) * sub_buckets) + 2

(* Smallest/largest regularly-bucketed magnitudes: [2^(e_min-1), 2^(e_max-1)). *)
let lowest_bound = Float.ldexp 1.0 (e_min - 1)
let highest_bound = Float.ldexp 1.0 (e_max - 1)

let bucket_index v =
  if not (v >= lowest_bound) then 0 (* below range, <= 0, or NaN *)
  else if v >= highest_bound then n_buckets - 1
  else begin
    let m, e = Float.frexp v in
    (* m in [0.5, 1): both steps below are exact float operations. *)
    let j = int_of_float ((2.0 *. m -. 1.0) *. float_of_int sub_buckets) in
    1 + (((e - e_min) * sub_buckets) + j)
  end

let upper_bound i =
  if i <= 0 then lowest_bound
  else if i >= n_buckets - 1 then Float.infinity
  else begin
    let k = i - 1 in
    let o = k / sub_buckets and j = k mod sub_buckets in
    Float.ldexp
      (1.0 +. (float_of_int (j + 1) /. float_of_int sub_buckets))
      (e_min + o - 1)
  end

(* ------------------------------------------------------------------ *)
(* Per-domain accumulators.                                           *)

(* Mixed int/float record: the float fields are boxed, so every store
   below is a single word-sized write — concurrent readers may observe
   a stale value mid-merge but never a torn one, exactly like the
   [Metrics] counter arrays.  Exactness is claimed after [Domain.join]
   (or for a domain's own table), same as [Metrics]. *)
type local = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable minv : float;
  mutable maxv : float;
}

let fresh_local () =
  {
    buckets = Array.make n_buckets 0;
    count = 0;
    sum = 0.0;
    sumsq = 0.0;
    minv = Float.infinity;
    maxv = Float.neg_infinity;
  }

let mu = Mutex.create ()

(* Every per-domain (name -> local) table ever handed out.  Tables
   outlive their domain so joined children keep contributing.  New
   names are added under [mu] so a merging reader never races a table
   resize; observations on existing names are lock-free. *)
let domains : (string, local) Hashtbl.t list ref =
  ref [] [@@vmor.sync "guarded by mu"]

let slot =
  Domain.DLS.new_key (fun () ->
      let tbl : (string, local) Hashtbl.t = Hashtbl.create 16 in
      Mutex.protect mu (fun () -> domains := tbl :: !domains);
      tbl)

let enabled = Atomic.make true

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let observe k v =
  if Atomic.get enabled then begin
    let tbl = Domain.DLS.get slot in
    let h =
      match Hashtbl.find_opt tbl k with
      | Some h -> h
      | None ->
        let h = fresh_local () in
        (* Insertion may resize the table; exclude concurrent mergers. *)
        Mutex.protect mu (fun () -> Hashtbl.add tbl k h);
        h
    in
    let i = bucket_index v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    h.sumsq <- h.sumsq +. (v *. v);
    if v < h.minv then h.minv <- v;
    if v > h.maxv then h.maxv <- v
  end

(* ------------------------------------------------------------------ *)
(* Merged views.                                                      *)

type view = {
  buckets : int array;
  count : int;
  sum : float;
  sumsq : float;
  minv : float;
  maxv : float;
}

let merge_into (acc : local) (h : local) =
  for i = 0 to n_buckets - 1 do
    acc.buckets.(i) <- acc.buckets.(i) + h.buckets.(i)
  done;
  acc.count <- acc.count + h.count;
  acc.sum <- acc.sum +. h.sum;
  acc.sumsq <- acc.sumsq +. h.sumsq;
  if h.minv < acc.minv then acc.minv <- h.minv;
  if h.maxv > acc.maxv then acc.maxv <- h.maxv

let view_of (acc : local) =
  {
    buckets = acc.buckets;
    count = acc.count;
    sum = acc.sum;
    sumsq = acc.sumsq;
    minv = acc.minv;
    maxv = acc.maxv;
  }

let view k =
  Mutex.protect mu (fun () ->
      let acc = fresh_local () in
      let found = ref false in
      List.iter
        (fun tbl ->
          match Hashtbl.find_opt tbl k with
          | Some h ->
            found := true;
            merge_into acc h
          | None -> ())
        !domains;
      if !found then Some (view_of acc) else None)

let all () =
  Mutex.protect mu (fun () ->
      let accs : (string, local) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun tbl ->
          Hashtbl.iter
            (fun k h ->
              let acc =
                match Hashtbl.find_opt accs k with
                | Some acc -> acc
                | None ->
                  let acc = fresh_local () in
                  Hashtbl.add accs k acc;
                  acc
              in
              merge_into acc h)
            tbl)
        !domains;
      Hashtbl.fold (fun k acc l -> (k, view_of acc) :: l) accs [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () =
  Mutex.protect mu (fun () ->
      List.iter
        (fun tbl ->
          Hashtbl.iter
            (fun _ (h : local) ->
              Array.fill h.buckets 0 n_buckets 0;
              h.count <- 0;
              h.sum <- 0.0;
              h.sumsq <- 0.0;
              h.minv <- Float.infinity;
              h.maxv <- Float.neg_infinity)
            tbl)
        !domains)

(* ------------------------------------------------------------------ *)
(* Derived statistics.                                                *)

let mean (v : view) =
  if v.count = 0 then Float.nan else v.sum /. float_of_int v.count

let stddev (v : view) =
  if v.count = 0 then Float.nan
  else begin
    let m = mean v in
    let var = (v.sumsq /. float_of_int v.count) -. (m *. m) in
    sqrt (Float.max 0.0 var)
  end

let nonzero_buckets (v : view) =
  Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 v.buckets

(* Closed-form quantile over the bucket boundaries: find the bucket
   holding the ceil(q * count)-th smallest observation and interpolate
   linearly inside it by integer rank.  A pure function of the integer
   bucket counts, hence bit-identical whenever they are. *)
let quantile (v : view) q =
  if v.count = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int v.count)) in
      if r < 1 then 1 else if r > v.count then v.count else r
    in
    let rec go i cum =
      if i >= n_buckets then v.maxv (* unreachable when counts are consistent *)
      else begin
        let c = v.buckets.(i) in
        if cum + c >= rank then begin
          let lo = if i = 0 then 0.0 else upper_bound (i - 1) in
          let hi = upper_bound i in
          if Float.is_finite hi then
            lo
            +. (hi -. lo)
               *. (float_of_int (rank - cum) /. float_of_int c)
          else lo (* overflow bucket: report its lower edge *)
        end
        else go (i + 1) (cum + c)
      end
    in
    go 0 0
  end
