(** GC/allocation telemetry for spans.

    The only module in the repo allowed to read the OCaml GC counters
    (the [raw-gc] lint rule rejects [Gc.stat] / [Gc.quick_stat] /
    [Gc.counters] outside lib/obs).  {!Span.with_} snapshots on entry
    and attaches the delta to the finished span record, so traced
    spans report where allocation pressure comes from; the null-sink
    fast path never reaches this module.

    [VMOR_PROF=0|off|false|no] disables capture even under an active
    sink, read once at module initialization; {!set_enabled} overrides
    it (atomically — safe to flip from any domain). *)

type t = {
  minor_words : float;  (** words allocated on the minor heap *)
  promoted_words : float;  (** words promoted minor -> major *)
  major_words : float;  (** words allocated on the major heap,
                            including promotions *)
  minor_collections : int;  (** minor GC cycles *)
  major_collections : int;  (** major GC cycles completed *)
  heap_words : int;  (** major heap size — absolute at capture, not
                         a delta *)
  top_heap_words : int;  (** major heap high-water mark — absolute *)
}
(** A GC snapshot, or (from {!since}) a delta of the cumulative fields
    with at-close absolutes for the two heap-size fields. *)

val zero : t

val take : unit -> t
(** Current counters via [Gc.quick_stat] (no heap walk; one small
    record allocation). *)

val since : t -> t
(** [since s0] is the delta of the cumulative fields accumulated after
    [s0] was taken; [heap_words] and [top_heap_words] are the current
    absolutes. *)

val alloc_words : t -> float
(** Freshly allocated words in a delta: minor + major - promoted
    (promoted words appear in both minor and major counts). *)

val add : t -> t -> t
(** Sum two deltas (cumulative fields add; heap absolutes take the
    max). *)

val fields : t -> (string * float) list
(** Stable field names used by every rendering ([prof.*] JSONL keys,
    Chrome-trace args, the bench gc block), in a fixed order. *)

val of_fields : (string * float) list -> t option
(** Inverse of {!fields}; [None] when no [minor_words] key is present
    (a record that predates prof capture).  Missing fields default to
    zero. *)

val set_enabled : bool -> unit
(** Enable/disable capture under an active sink (default: enabled
    unless [VMOR_PROF] says otherwise). *)

val is_enabled : unit -> bool
