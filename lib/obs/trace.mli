(** Reading and analyzing JSONL traces (the inverse of {!Sink.jsonl}).

    Spans are emitted when they close, so a trace lists children
    before their parents; {!of_records} rebuilds the hierarchy from
    the recorded depths.  The renderers back both the [tools/trace_report]
    executable and the [vmor report] subcommand, and return strings —
    printing is the caller's business. *)

type record =
  | Span of Sink.span_record
  | Event of Sink.event_record
  | Scope of Sink.scope_record

type item = Node of Sink.span_record * item list | Leaf of Sink.event_record

type t = {
  roots : item list;  (** top-level items, in completion order *)
  spans : Sink.span_record list;  (** all spans, emission order *)
  events : Sink.event_record list;  (** all events, emission order *)
  scopes : Sink.scope_record list;
      (** all scope closes, emission order.  Scope depths are
          per-domain, so scopes stay out of the span tree. *)
}

exception Malformed of string
(** Raised on lines that are not valid trace records. *)

val parse_line : string -> record
val of_records : record list -> t

val load : string -> t
(** Parse a JSONL trace file.  Blank lines are skipped; items whose
    enclosing span never closed (truncated trace) become extra roots. *)

val render_tree : ?max_depth:int -> t -> string
(** Where-the-time-went tree: per-span duration and kernel-counter
    deltas, point events aggregated by name (recovery events are shown
    individually with their detail). *)

type attrib = {
  span : string;  (** span name *)
  calls : int;  (** occurrences across the trace *)
  incl_s : float;  (** total inclusive seconds *)
  excl_s : float;  (** total exclusive seconds (self minus children) *)
  incl_minor_words : float;
  excl_minor_words : float;
  incl_major_words : float;
  excl_major_words : float;
  incl_flops : int;  (** total inclusive nominal flops ({!Cost}) *)
  excl_flops : int;  (** exclusive flops (self minus children, >= 0) *)
  incl_bytes : int;  (** total inclusive nominal bytes moved *)
  excl_bytes : int;  (** exclusive bytes (self minus children, >= 0) *)
}

val attribution : t -> attrib list
(** Per-span-name inclusive and exclusive time/allocation/work totals,
    sorted by exclusive time descending.  Exclusive cost is the span's
    own value minus the sum over its direct child spans, clamped at
    zero; allocation columns are zero for traces recorded without
    {!Prof} capture, and flop/byte columns are zero for traces
    recorded before the {!Cost} layer existed. *)

val flops_rate : flops:int -> seconds:float -> string
(** Derived flops-per-second, or ["n/a"] when [seconds] is zero (below
    clock resolution) or non-finite — the rate guard used by the
    {!render_hot} column. *)

val render_hot : ?top:int -> t -> string
(** "Hot kernels" table over {!attribution}, showing the [top]
    (default 10) spans by exclusive time, with exclusive flop/byte
    totals and the guarded flops-per-second rate. *)

val to_chrome : t -> Json.t
(** Chrome trace-event JSON (chrome://tracing, Perfetto): spans as
    ["X"] complete events with microsecond [ts]/[dur] normalized to
    the earliest record, point events as instant events, counters and
    [prof.*] telemetry in [args]. *)

val chrome_string : t -> string
(** [Json.render (to_chrome t)]. *)

val validate_chrome : Json.t -> unit
(** Structural check of a Chrome trace-event value: non-empty
    [traceEvents], each with [name]/[ph]/[ts]/[pid]/[tid] and a
    finite non-negative [dur] on ["X"] events.  Raises {!Malformed}. *)

val to_folded : t -> string
(** Folded-stack rendering (flamegraph.pl, speedscope): one
    ["root;child;leaf count"] line per unique call stack, counts in
    exclusive integer microseconds.  Counts sum exactly to the total
    root inclusive time whenever children nest within their parents;
    names are sanitized (spaces to [_], [;] to [:]). *)

val health_records : t -> Health.record list
(** Every decodable health event, in emission order. *)

type health_summary = {
  worst_ortho : (string * int * float) option;
      (** context, iteration, worst orthogonality loss *)
  min_margin : (string * int * float) option;
      (** context, iteration, smallest deflation margin *)
  max_cond : (string * int * float) list;
      (** per context: dimension and largest condition estimate *)
  streaks : (string * float * int) list;
      (** ODE rejection streaks: context, model time, length *)
  residuals : (int * float * float) list;
      (** moment residuals: k, s0, relative residual (last per k) *)
  freq_worst : (float * float) option;  (** omega, worst relative error *)
  freq_samples : int;
  pod : (int * int * float * float) option;
      (** retained, total, energy, tail *)
}

val summarize : t -> health_summary

val render_health : t -> string
(** Human-readable numerical-health summary block. *)

val counter_totals : t -> (string * int) list
(** Whole-run kernel-counter totals: counters summed over depth-0
    spans only (span counters are inclusive of children), sorted by
    name. *)

val cost_totals : t -> (string * int) list
(** Whole-run {!Cost} totals over depth-0 spans, sorted by name. *)

val render_diff : t -> t -> string
(** Compare two traces: per-span-name total durations, whole-run
    kernel counters and cost totals (depth-0 spans), and headline
    health values, with percentage deltas. *)
