(* GC/allocation telemetry for spans.

   This module is the repo's only reader of the OCaml GC counters: the
   raw-gc lint rule forbids [Gc.stat] / [Gc.quick_stat] /
   [Gc.counters] / [Gc.minor_words] everywhere outside lib/obs,
   mirroring what raw-clock does for the wall clock.  [Span.with_] snapshots on entry and computes the delta
   on close — but only when a sink is installed, so the null-sink fast
   path never touches the GC.  [Gc.quick_stat] reads counters without
   walking the heap, so a capture costs one small record allocation.

   VMOR_PROF=0|off|false|no disables capture even under an active sink
   (spans then carry no prof fields), for isolating the capture cost. *)

type t = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
  top_heap_words : int;
}

let zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    heap_words = 0;
    top_heap_words = 0;
  }

(* The environment knob is read eagerly at module init (before any
   domain can exist), so the flag is a plain atomic — no lazy cell,
   which would race under concurrent forcing. *)
let enabled =
  Atomic.make
    (match Sys.getenv_opt "VMOR_PROF" with
    | Some v ->
      not (List.mem (String.lowercase_ascii v) [ "0"; "off"; "false"; "no" ])
    | None -> true)

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* On OCaml 5.x the word counters in [Gc.quick_stat] are only
   refreshed at collection boundaries, so a span that triggers no
   minor GC would read zero deltas.  [Gc.minor_words] samples the
   allocation pointer directly, and [Gc.counters] accounts direct
   major-heap allocations (e.g. large arrays) eagerly, so words come
   from those; collection counts and the heap levels — which only
   move at collection boundaries anyway — come from the quick stat. *)
let take () =
  let minor_words = Gc.minor_words () in
  let _, promoted_words, major_words = Gc.counters () in
  let s = Gc.quick_stat () in
  {
    minor_words;
    promoted_words;
    major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
  }

(* Cumulative counters become deltas; [heap_words] / [top_heap_words]
   keep the at-close absolutes (a high-water mark has no meaningful
   difference, and the live-heap size is a level, not a flow). *)
let since (s0 : t) =
  let s1 = take () in
  {
    minor_words = s1.minor_words -. s0.minor_words;
    promoted_words = s1.promoted_words -. s0.promoted_words;
    major_words = s1.major_words -. s0.major_words;
    minor_collections = s1.minor_collections - s0.minor_collections;
    major_collections = s1.major_collections - s0.major_collections;
    heap_words = s1.heap_words;
    top_heap_words = s1.top_heap_words;
  }

(* Words freshly allocated: minor + major, minus the promoted words
   that would otherwise be counted in both. *)
let alloc_words t = t.minor_words +. t.major_words -. t.promoted_words

let add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    major_words = a.major_words +. b.major_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
    heap_words = max a.heap_words b.heap_words;
    top_heap_words = max a.top_heap_words b.top_heap_words;
  }

(* Stable field names used by every rendering (JSONL [prof.*] keys,
   Chrome-trace args, the bench gc block). *)
let fields t =
  [
    ("minor_words", t.minor_words);
    ("promoted_words", t.promoted_words);
    ("major_words", t.major_words);
    ("minor_collections", float_of_int t.minor_collections);
    ("major_collections", float_of_int t.major_collections);
    ("heap_words", float_of_int t.heap_words);
    ("top_heap_words", float_of_int t.top_heap_words);
  ]

let of_fields l =
  match List.assoc_opt "minor_words" l with
  | None -> None
  | Some _ ->
    let f k = Option.value ~default:0.0 (List.assoc_opt k l) in
    let i k = int_of_float (f k) in
    Some
      {
        minor_words = f "minor_words";
        promoted_words = f "promoted_words";
        major_words = f "major_words";
        minor_collections = i "minor_collections";
        major_collections = i "major_collections";
        heap_words = i "heap_words";
        top_heap_words = i "top_heap_words";
      }
