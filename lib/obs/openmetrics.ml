(* OpenMetrics / Prometheus text exposition, hand-rendered.

   One function renders everything the Obs layer knows — Metrics
   counters, Cost counters, gauges, and every Qhist distribution as a
   native histogram family — in the OpenMetrics text format
   (# HELP / # TYPE metadata, samples, terminating # EOF).  Family
   names are partitioned by prefix so the four sources can never
   collide:

     vmor_<counter>_total        kernel event counters
     vmor_cost_<counter>_total   nominal flop/byte counters
     vmor_gauge_<name>           last-write-wins gauges
     vmor_hist_<name>            Qhist histograms (_bucket/_sum/_count)
     vmor_build_info             build metadata

   Histogram _bucket samples are cumulative with [le] upper-edge
   labels; only nonzero buckets are emitted (plus the mandatory +Inf)
   — sparse emission is valid because the counts are cumulative.

   [validate] is an independent line-format checker used by the tests
   and the openmetrics smoke alias: it re-parses an exposition string
   and enforces the structural rules (metadata before samples, known
   sample suffixes, monotone cumulative buckets, +Inf terminal bucket
   matching _count, single trailing # EOF).  Renderer and validator
   are written against the spec separately, so a drift in either
   fails the round-trip test. *)

(* ------------------------------------------------------------------ *)
(* Rendering.                                                         *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

(* Metric names admit [a-zA-Z_][a-zA-Z0-9_]*; anything else maps to '_'. *)
let sanitize s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c ->
        let ok = if i = 0 then is_name_start c else is_name_char c in
        if not ok then Bytes.set b i '_')
      b;
    Bytes.to_string b
  end

let label_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.17g round-trips every double and is deterministic for a given
   bit pattern — bucket edges are dyadic, so the labels are exact. *)
let float_label v =
  if v = Float.infinity then "+Inf" else Printf.sprintf "%.17g" v

let float_value v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else Printf.sprintf "%.17g" v

let render () =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let meta name typ help =
    line "# HELP %s %s" name help;
    line "# TYPE %s %s" name typ
  in
  (* kernel event counters *)
  List.iter
    (fun c ->
      let fam = "vmor_" ^ Metrics.name c in
      meta fam "counter" "vmor kernel event counter";
      line "%s_total %d" fam (Metrics.get c))
    Metrics.all;
  (* nominal cost counters *)
  List.iter
    (fun c ->
      let fam = "vmor_cost_" ^ Cost.name c in
      meta fam "counter" "vmor deterministic nominal work counter";
      line "%s_total %d" fam (Cost.get c))
    Cost.all;
  (* gauges *)
  List.iter
    (fun (k, v) ->
      let fam = "vmor_gauge_" ^ sanitize k in
      meta fam "gauge" "vmor last-write-wins gauge";
      line "%s %s" fam (float_value v))
    (Metrics.gauges ());
  (* Qhist distributions as native histograms *)
  List.iter
    (fun (k, (v : Qhist.view)) ->
      let fam = "vmor_hist_" ^ sanitize k in
      meta fam "histogram" "vmor deterministic log-linear histogram";
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          (* the overflow bucket's upper edge IS +Inf: its population is
             carried by the mandatory terminal +Inf bucket below, so
             emitting it here would duplicate the le="+Inf" sample *)
          if c > 0 && i < Qhist.n_buckets - 1 then begin
            cum := !cum + c;
            line "%s_bucket{le=\"%s\"} %d" fam
              (float_label (Qhist.upper_bound i))
              !cum
          end)
        v.Qhist.buckets;
      line "%s_bucket{le=\"+Inf\"} %d" fam v.Qhist.count;
      line "%s_sum %s" fam (float_value v.Qhist.sum);
      line "%s_count %d" fam v.Qhist.count)
    (Qhist.all ());
  (* build metadata *)
  meta "vmor_build" "info" "vmor build metadata";
  line "vmor_build_info{ocaml_version=\"%s\"} 1"
    (label_escape Sys.ocaml_version);
  line "# EOF";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Line-format validation.                                            *)

exception Invalid of string

let invalid lineno fmt =
  Printf.ksprintf (fun m -> raise (Invalid (Printf.sprintf "line %d: %s" lineno m))) fmt

let valid_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char s

(* Split "name{labels} value" / "name value" into its three parts.
   Label values are double-quoted with backslash escapes; braces or
   spaces inside quoted values are part of the value. *)
let split_sample lineno s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && is_name_char s.[!i] do incr i done;
  if !i = 0 then invalid lineno "sample does not start with a metric name";
  let name = String.sub s 0 !i in
  let labels =
    if !i < n && s.[!i] = '{' then begin
      let start = !i + 1 in
      let j = ref start and in_str = ref false and esc = ref false
      and close = ref (-1) in
      while !close < 0 && !j < n do
        let c = s.[!j] in
        if !esc then esc := false
        else if !in_str then begin
          if c = '\\' then esc := true else if c = '"' then in_str := false
        end
        else if c = '"' then in_str := true
        else if c = '}' then close := !j;
        incr j
      done;
      if !close < 0 then invalid lineno "unterminated label set";
      let body = String.sub s start (!close - start) in
      i := !close + 1;
      Some body
    end
    else None
  in
  if !i >= n || s.[!i] <> ' ' then
    invalid lineno "expected a space before the sample value";
  let value = String.sub s (!i + 1) (n - !i - 1) in
  (name, labels, value)

(* Parse one label set body into (name, unescaped value) pairs. *)
let parse_labels lineno body =
  let n = String.length body in
  let pos = ref 0 and out = ref [] in
  while !pos < n do
    let start = !pos in
    while !pos < n && is_name_char body.[!pos] do incr pos done;
    if !pos = start then invalid lineno "empty label name";
    let lname = String.sub body start (!pos - start) in
    if not (valid_name lname) then invalid lineno "invalid label name %S" lname;
    if !pos + 1 >= n || body.[!pos] <> '=' || body.[!pos + 1] <> '"' then
      invalid lineno "label %S is not followed by =\"...\"" lname;
    pos := !pos + 2;
    let buf = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      if !pos >= n then invalid lineno "unterminated label value for %S" lname;
      (match body.[!pos] with
      | '\\' ->
        if !pos + 1 >= n then invalid lineno "dangling escape in label value";
        (match body.[!pos + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        pos := !pos + 1
      | '"' -> closed := true
      | c -> Buffer.add_char buf c);
      incr pos
    done;
    out := (lname, Buffer.contents buf) :: !out;
    if !pos < n then begin
      if body.[!pos] <> ',' then
        invalid lineno "expected ',' between labels";
      incr pos
    end
  done;
  List.rev !out

let parse_value lineno v =
  match v with
  | "+Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | _ -> (
    match float_of_string_opt v with
    | Some f -> f
    | None -> invalid lineno "unparseable sample value %S" v)

type family = {
  typ : string;
  mutable buckets : (float * float) list;  (* le, cumulative — emission order *)
  mutable count : float option;
  mutable samples : int;
}

let known_types = [ "counter"; "gauge"; "histogram"; "summary"; "info"; "unknown" ]

(* Which declared family does a sample name belong to, and is the
   suffix legal for that family's type? *)
let family_of families lineno sname =
  let try_suffix suffix =
    let ls = String.length suffix and ln = String.length sname in
    if ln > ls && String.sub sname (ln - ls) ls = suffix then begin
      let base = String.sub sname 0 (ln - ls) in
      match Hashtbl.find_opt families base with
      | Some f -> Some (base, f, suffix)
      | None -> None
    end
    else None
  in
  let bare =
    match Hashtbl.find_opt families sname with
    | Some f -> Some (sname, f, "")
    | None -> None
  in
  let candidates =
    List.filter_map Fun.id
      [ try_suffix "_total"; try_suffix "_bucket"; try_suffix "_sum";
        try_suffix "_count"; try_suffix "_info"; bare ]
  in
  match candidates with
  | [] ->
    invalid lineno "sample %S does not belong to any declared family" sname
  | (base, f, suffix) :: _ ->
    let ok =
      match (f.typ, suffix) with
      | "counter", "_total" -> true
      | "gauge", "" | "unknown", "" -> true
      | "histogram", ("_bucket" | "_sum" | "_count") -> true
      | "summary", ("_sum" | "_count" | "") -> true
      | "info", "_info" -> true
      | _ -> false
    in
    if not ok then
      invalid lineno "sample %S has suffix %S, illegal for %s family %S" sname
        suffix f.typ base;
    (base, f, suffix)

let validate text =
  try
    let lines = String.split_on_char '\n' text in
    (* the exposition ends "...# EOF\n": exactly one trailing empty chunk *)
    let lines =
      match List.rev lines with
      | "" :: rest -> List.rev rest
      | _ -> raise (Invalid "exposition does not end with a newline")
    in
    let families : (string, family) Hashtbl.t = Hashtbl.create 32 in
    let seen_eof = ref false in
    let lineno = ref 0 in
    List.iter
      (fun line ->
        incr lineno;
        let n = !lineno in
        if !seen_eof then invalid n "content after # EOF";
        if line = "" then invalid n "blank line"
        else if line = "# EOF" then seen_eof := true
        else if String.length line >= 2 && String.sub line 0 2 = "# " then begin
          match String.split_on_char ' ' line with
          | "#" :: kind :: name :: rest -> (
            match kind with
            | "HELP" ->
              if not (valid_name name) then
                invalid n "invalid metric name %S in HELP" name;
              if rest = [] then invalid n "HELP without text"
            | "TYPE" -> (
              if not (valid_name name) then
                invalid n "invalid metric name %S in TYPE" name;
              match rest with
              | [ t ] when List.mem t known_types ->
                if Hashtbl.mem families name then
                  invalid n "duplicate TYPE for family %S" name;
                Hashtbl.add families name
                  { typ = t; buckets = []; count = None; samples = 0 }
              | _ -> invalid n "malformed TYPE line")
            | _ -> invalid n "unknown metadata kind %S" kind)
          | _ -> invalid n "malformed metadata line"
        end
        else begin
          let sname, labels, value = split_sample n line in
          if not (valid_name sname) then invalid n "invalid sample name %S" sname;
          let labels =
            match labels with Some body -> parse_labels n body | None -> []
          in
          let v = parse_value n value in
          let base, fam, suffix = family_of families n sname in
          fam.samples <- fam.samples + 1;
          (match suffix with
          | "_bucket" -> (
            match List.assoc_opt "le" labels with
            | None -> invalid n "histogram bucket without an le label"
            | Some le ->
              let lef =
                if le = "+Inf" then Float.infinity
                else
                  match float_of_string_opt le with
                  | Some f -> f
                  | None -> invalid n "unparseable le label %S" le
              in
              (match fam.buckets with
              | (ple, pcum) :: _ ->
                if not (lef > ple) then
                  invalid n "bucket le %S not increasing for family %S" le base;
                if v < pcum then
                  invalid n "cumulative bucket count decreased in family %S" base
              | [] -> ());
              fam.buckets <- (lef, v) :: fam.buckets)
          | "_count" ->
            if Float.is_integer v && v >= 0.0 then fam.count <- Some v
            else invalid n "_count sample is not a non-negative integer"
          | "_total" ->
            if v < 0.0 then invalid n "counter %S is negative" sname
          | _ -> ())
        end)
      lines;
    if not !seen_eof then raise (Invalid "missing # EOF terminator");
    (* cross-sample histogram consistency *)
    Hashtbl.iter
      (fun base f ->
        if f.typ = "histogram" && f.samples > 0 then begin
          match f.buckets with
          | (le, cum) :: _ ->
            if le <> Float.infinity then
              raise
                (Invalid
                   (Printf.sprintf "family %S: last bucket is not le=\"+Inf\""
                      base));
            (match f.count with
            | Some c when c <> cum ->
              raise
                (Invalid
                   (Printf.sprintf
                      "family %S: _count %g disagrees with +Inf bucket %g" base
                      c cum))
            | Some _ -> ()
            | None ->
              raise
                (Invalid (Printf.sprintf "family %S: missing _count" base)))
          | [] ->
            raise
              (Invalid
                 (Printf.sprintf "family %S: histogram without buckets" base))
        end)
      families;
    Ok ()
  with Invalid m -> Error m

let write_file path =
  let text = render () in
  (match validate text with
  | Ok () -> ()
  | Error m ->
    (* A render/validate disagreement is an internal format bug. *)
    raise (Invalid ("rendered invalid exposition: " ^ m)));
  let oc = open_out path in
  output_string oc text;
  close_out oc
