(* Pluggable trace sinks.

   A sink receives finished span records and point events.  The null
   sink is the default and is compared physically ([==]) on the hot
   path, so a disabled tracer costs one load and one pointer compare
   per span.  Environment knobs:

     VMOR_TRACE=<file.jsonl>        install a JSONL trace sink at startup
     VMOR_METRICS=1|stderr          print the metrics table to stderr at exit
     VMOR_METRICS=openmetrics:PATH  write the OpenMetrics exposition at exit
     VMOR_METRICS=<file.csv>        write the metrics CSV summary at exit

   Explicit [set] (CLI flags, tests) overrides the environment. *)

type span_record = {
  name : string;
  depth : int;
  start : float;
  dur : float;
  counters : (string * int) list;
  cost : (string * int) list;
  prof : Prof.t option;
}

type event_record = {
  name : string;
  depth : int;
  time : float;
  detail : string;
}

(* A closed telemetry scope: like a span, but its counter/cost deltas
   are domain-local (exact under concurrency) rather than merged. *)
type scope_record = {
  name : string;
  depth : int;
  start : float;
  dur : float;
  counters : (string * int) list;
  cost : (string * int) list;
}

type t = {
  on_span : span_record -> unit;
  on_event : event_record -> unit;
  on_scope : scope_record -> unit;
  flush : unit -> unit;
}

let null =
  { on_span = ignore; on_event = ignore; on_scope = ignore; flush = ignore }

(* ------------------------------------------------------------------ *)
(* JSONL                                                              *)

let json_escape = Json.escape

let span_to_json (r : span_record) =
  let counters =
    r.counters
    |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
    |> String.concat ","
  in
  (* GC telemetry rides along as flat prof.* members, so readers that
     predate prof capture keep parsing the record unchanged. *)
  let prof =
    match r.prof with
    | None -> ""
    | Some p ->
      Prof.fields p
      |> List.map (fun (k, v) ->
             Printf.sprintf ",\"prof.%s\":%s" k (Json.float_string v))
      |> String.concat ""
  in
  (* Cost deltas ride the same way as flat cost.* members: absent in
     old traces, ignored by readers that predate the cost layer. *)
  let cost =
    r.cost
    |> List.map (fun (k, v) ->
           Printf.sprintf ",\"cost.%s\":%d" (json_escape k) v)
    |> String.concat ""
  in
  Printf.sprintf
    "{\"type\":\"span\",\"name\":\"%s\",\"depth\":%d,\"start\":%.6f,\"dur\":%.6f,\"counters\":{%s}%s%s}"
    (json_escape r.name) r.depth r.start r.dur counters prof cost

let event_to_json (r : event_record) =
  Printf.sprintf
    "{\"type\":\"event\",\"name\":\"%s\",\"depth\":%d,\"time\":%.6f,\"detail\":\"%s\"}"
    (json_escape r.name) r.depth r.time (json_escape r.detail)

(* Scope closes share the span wire shape under "type":"scope", so
   readers that predate scopes skip them by type. *)
let scope_to_json (r : scope_record) =
  let kv (k, v) = Printf.sprintf "\"%s\":%d" (json_escape k) v in
  let counters = String.concat "," (List.map kv r.counters) in
  let cost =
    r.cost
    |> List.map (fun (k, v) ->
           Printf.sprintf ",\"cost.%s\":%d" (json_escape k) v)
    |> String.concat ""
  in
  Printf.sprintf
    "{\"type\":\"scope\",\"name\":\"%s\",\"depth\":%d,\"start\":%.6f,\"dur\":%.6f,\"counters\":{%s}%s}"
    (json_escape r.name) r.depth r.start r.dur counters cost

let jsonl oc =
  {
    on_span = (fun r -> output_string oc (span_to_json r ^ "\n"));
    on_event = (fun r -> output_string oc (event_to_json r ^ "\n"));
    on_scope = (fun r -> output_string oc (scope_to_json r ^ "\n"));
    flush = (fun () -> flush oc);
  }

let jsonl_file path =
  let oc = open_out path in
  at_exit (fun () -> close_out_noerr oc);
  jsonl oc

(* ------------------------------------------------------------------ *)
(* In-memory capture (tests).                                         *)

type captured = {
  spans : span_record list;
  events : event_record list;
  scopes : scope_record list;
}

let memory () =
  let spans = ref [] and events = ref [] and scopes = ref [] in
  let sink =
    {
      on_span = (fun r -> spans := r :: !spans);
      on_event = (fun r -> events := r :: !events);
      on_scope = (fun r -> scopes := r :: !scopes);
      flush = ignore;
    }
  in
  ( sink,
    fun () ->
      { spans = List.rev !spans; events = List.rev !events;
        scopes = List.rev !scopes } )

(* ------------------------------------------------------------------ *)
(* Current sink + environment initialization.                         *)

let sink = Atomic.make null

(* Environment knobs are read eagerly at module init — before any
   domain can be spawned — so the install itself needs no lock and
   the hot-path read is a single atomic load. *)
let () =
  (match Sys.getenv_opt "VMOR_TRACE" with
  | Some path when path <> "" -> Atomic.set sink (jsonl_file path)
  | _ -> ());
  match Sys.getenv_opt "VMOR_METRICS" with
  | Some v when v <> "" -> (
    match String.lowercase_ascii v with
    | "1" | "true" | "on" | "yes" | "stderr" ->
      at_exit (fun () -> prerr_string (Metrics.render_table ()))
    | low when String.length low > 12 && String.sub low 0 12 = "openmetrics:" ->
      (* keep the path's original case *)
      let path = String.sub v 12 (String.length v - 12) in
      at_exit (fun () -> Openmetrics.write_file path)
    | _ -> at_exit (fun () -> Metrics.write_csv v))
  | _ -> ()

let current () = Atomic.get sink

let set s = (Atomic.exchange sink s).flush ()

let is_active () = current () != null
