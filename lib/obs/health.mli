(** Numerical-health telemetry.

    Typed diagnostic records for the quantities that decide whether an
    AT-NMOR run can be trusted: Arnoldi orthogonality loss and
    deflation margins, condition estimates of the shifted solves, ODE
    rejection streaks, a-posteriori moment-match residuals, and POD
    spectrum truncation energy.

    Records flow through the active {!Sink} as point events named
    ["health.<kind>"] with a ["key=value ..."] detail payload, and
    headline values are folded into {!Metrics} histograms/gauges.
    With the null sink installed, {!emit} is a no-op; producers must
    additionally guard any expensive diagnostic {e computation} behind
    {!active} so the disabled-observability overhead budget holds. *)

type record =
  | Arnoldi of {
      context : string;  (** which Krylov loop, e.g. ["arnoldi.run"] *)
      iteration : int;
      ortho_loss : float;
          (** [||V^T V - I||_max] over the basis built so far *)
      subdiag : float;  (** Hessenberg subdiagonal magnitude [h_{j+1,j}] *)
      defl_margin : float;
          (** [subdiag / deflation threshold]; values [<= 1] deflate *)
    }
  | Cond of {
      context : string;  (** which operator, e.g. ["assoc.resolvent"] *)
      dim : int;
      cond : float;  (** 1-norm condition estimate *)
    }
  | Ode_streak of {
      context : string;  (** integrator name *)
      time : float;  (** model time where the streak ended *)
      length : int;  (** consecutive rejected steps *)
    }
  | Moment_residual of {
      k : int;  (** transfer-function order: 1, 2 or 3 *)
      s0 : float;  (** expansion point the ROM was matched at *)
      residual : float;
          (** [||H_k^full(s0) - H_k^rom(s0)|| / ||H_k^full(s0)||] *)
    }
  | Freq_error of {
      omega : float;  (** angular frequency of the sample point *)
      rel_err : float;  (** relative H1 error at [s0 + i*omega] *)
    }
  | Pod_spectrum of {
      retained : int;
      total : int;  (** snapshot count = available modes *)
      energy : float;  (** fraction of spectral energy captured *)
      tail : float;
          (** first discarded eigenvalue over the largest (decay depth) *)
    }

val active : unit -> bool
(** [true] iff a non-null sink is installed.  Guard any nontrivial
    diagnostic computation (orthogonality checks, condition
    estimators, residual solves) behind this. *)

val emit : record -> unit
(** Deliver a record to the active sink and fold its headline value
    into {!Metrics}.  No-op under the null sink. *)

val name_of : record -> string
(** Stable event name, ["health.<kind>"]. *)

val detail_of : record -> string
(** The ["key=value ..."] payload carried in the event detail. *)

val parse_detail : string -> (string * string) list
(** Split a detail payload back into key/value pairs. *)

val of_event : name:string -> detail:string -> record option
(** Reconstruct a record from a trace event; [None] for non-health or
    malformed events. *)
