(** Minimal JSON reader for the observability tooling.

    Matches the hand-rendered writers in {!Sink} and [bench/main.ml];
    the repo carries no third-party JSON dependency.  Numbers are kept
    as floats (every numeric field we emit fits exactly). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised on malformed input and on type-mismatched accessors. *)

val parse : string -> t
(** Parse one complete JSON value; trailing garbage is an error. *)

val kind : t -> string
(** Constructor name, for error messages. *)

val member : string -> t -> t option
(** Field lookup; raises {!Parse_error} if the value is not an object. *)

val member_exn : string -> t -> t
(** Like {!member} but a missing key raises {!Parse_error}. *)

val to_num : t -> float
val to_int : t -> int
val to_str : t -> string
val to_arr : t -> t list
val to_obj : t -> (string * t) list

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val float_string : float -> string
(** Shortest decimal form that {!parse} reads back to the same float;
    integers render without exponent or trailing [.]; non-finite
    values render as [null] (JSON has no Inf/NaN tokens). *)

val render : t -> string
(** Compact one-line rendering; [parse (render v)] round-trips every
    finite value. *)
