(** Pluggable trace sinks.

    A sink consumes finished {!Span} records and point events.  The
    process holds exactly one current sink; the default {!null} sink
    makes tracing a no-op (physical-equality fast path in [Span]).

    Environment knobs, read once at module initialization (before any
    domain can be spawned, so the install is race-free):
    - [VMOR_TRACE=<file.jsonl>] — install a {!jsonl_file} sink;
    - [VMOR_METRICS=1|true|on|yes|stderr] — print the metrics table to
      stderr at process exit;
    - [VMOR_METRICS=openmetrics:PATH] — write the {!Openmetrics} text
      exposition to [PATH] at exit;
    - [VMOR_METRICS=<file.csv>] — write the metrics CSV summary at exit.

    Explicit {!set} (from CLI flags or tests) overrides the
    environment. *)

type span_record = {
  name : string;           (** span name, e.g. ["atmor.reduce"] *)
  depth : int;             (** nesting depth, 0 = top level *)
  start : float;           (** {!Clock.now} at span entry *)
  dur : float;             (** elapsed seconds *)
  counters : (string * int) list;
      (** nonzero counter deltas accumulated inside the span,
          inclusive of child spans *)
  cost : (string * int) list;
      (** nonzero {!Cost} deltas (nominal flops/bytes) accumulated
          inside the span, inclusive of child spans; rendered as flat
          [cost.*] JSON members *)
  prof : Prof.t option;
      (** GC/allocation deltas over the span (inclusive of children),
          rendered as flat [prof.*] JSON members; [None] when capture
          is disabled *)
}

type event_record = {
  name : string;
  depth : int;
  time : float;
  detail : string;
}

type scope_record = {
  name : string;           (** scope name, e.g. ["request"] *)
  depth : int;             (** scope nesting depth on its domain *)
  start : float;           (** {!Clock.now} at scope entry *)
  dur : float;             (** elapsed seconds *)
  counters : (string * int) list;
      (** nonzero {e domain-local} counter deltas — exact for this
          scope even while other domains run concurrently *)
  cost : (string * int) list;
      (** nonzero domain-local {!Cost} deltas, same exactness *)
}
(** A closed {!Scope}: the span wire shape, but with domain-local
    (smear-free) deltas.  Rendered as a ["type":"scope"] JSONL
    record. *)

type t = {
  on_span : span_record -> unit;
  on_event : event_record -> unit;
  on_scope : scope_record -> unit;
  flush : unit -> unit;
}

val null : t
(** Discards everything.  The default. *)

val jsonl : out_channel -> t
(** One JSON object per line.  Spans are emitted when they {e close},
    so parents appear after their children in the stream. *)

val jsonl_file : string -> t
(** [jsonl] over a freshly opened file, closed at process exit. *)

val span_to_json : span_record -> string
val event_to_json : event_record -> string
val scope_to_json : scope_record -> string

type captured = {
  spans : span_record list;
  events : event_record list;
  scopes : scope_record list;
}

val memory : unit -> t * (unit -> captured)
(** In-memory sink for tests; the closure returns everything captured
    so far in emission order. *)

val current : unit -> t
(** The active sink (one atomic load). *)

val set : t -> unit
(** Replace the active sink atomically, flushing the previous one. *)

val is_active : unit -> bool
(** [true] iff the active sink is not {!null}. *)
