(** OpenMetrics / Prometheus text exposition.

    {!render} serializes everything the Obs layer knows — {!Metrics}
    counters ([vmor_<name>_total]), {!Cost} counters
    ([vmor_cost_<name>_total]), gauges ([vmor_gauge_<name>]), every
    {!Qhist} distribution as a native histogram family
    ([vmor_hist_<name>] with cumulative [_bucket{le="..."}] samples,
    [_sum] and [_count]), and build metadata ([vmor_build_info]) — in
    the OpenMetrics text format, terminated by [# EOF].  The prefix
    partition makes family-name collisions between the sources
    impossible.  Only nonzero buckets are emitted (sparse cumulative
    emission is valid), plus the mandatory [+Inf] bucket.

    Exposed behind [vmor metrics [--out FILE]] and the
    [VMOR_METRICS=openmetrics:PATH] environment mode.  See DESIGN.md
    section 16. *)

exception Invalid of string
(** Raised by {!write_file} when render and validator disagree — an
    internal exposition-format bug, not a user error. *)

val render : unit -> string
(** The current exposition.  Deterministic up to the recorded
    telemetry: families sorted by source order / name, histogram
    bucket counts bit-identical whenever the underlying {!Qhist}
    counts are. *)

val validate : string -> (unit, string) result
(** Independent line-format checker: metadata shape, name charset,
    metadata-before-samples, known sample suffixes per family type,
    label syntax, parseable values, monotone cumulative buckets with a
    terminal [+Inf] agreeing with [_count], single trailing [# EOF].
    [Error] carries the first offending line. *)

val write_file : string -> unit
(** {!render}, {!validate} (raising [Failure] on an internal format
    bug) and write to a file. *)

val sanitize : string -> string
(** Map an arbitrary name onto the metric-name charset
    [[a-zA-Z_][a-zA-Z0-9_]*] (invalid characters become ['_']). *)
