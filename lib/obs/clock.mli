(** Wall-clock access for the whole repo.

    All timing in vmor goes through this module; raw
    [Unix.gettimeofday] / [Sys.time] calls outside [lib/obs] are
    rejected by the [raw-clock] lint rule. *)

val now : unit -> float
(** Seconds since the epoch, sub-microsecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the
    elapsed wall time in seconds. *)
