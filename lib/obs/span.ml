(* Hierarchical timed spans.

   [with_ ~name f] is free (one sink load + pointer compare) when the
   null sink is active; otherwise it times [f], captures the counter
   deltas accumulated inside it, and hands a span record to the sink
   when [f] returns or raises. *)

let depth = ref 0

let with_ ~name f =
  let s = Sink.current () in
  if s == Sink.null then f ()
  else begin
    let d = !depth in
    depth := d + 1;
    let start = Clock.now () in
    let snap = Metrics.snapshot () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Clock.now () -. start in
        let counters =
          List.map (fun (c, n) -> (Metrics.name c, n)) (Metrics.since snap)
        in
        depth := d;
        s.Sink.on_span { Sink.name; depth = d; start; dur; counters })
      f
  end

let event ?(detail = "") name =
  let s = Sink.current () in
  if s != Sink.null then
    s.Sink.on_event
      { Sink.name; depth = !depth; time = Clock.now (); detail }

let active () = Sink.current () != Sink.null
