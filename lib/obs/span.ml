(* Hierarchical timed spans.

   [with_ ~name f] is free (one sink load + pointer compare) when the
   null sink is active; otherwise it times [f], captures the counter
   and GC/allocation deltas accumulated inside it, and hands a span
   record to the sink when [f] returns or raises. *)

(* Nesting depth is per-domain: concurrent spans in different domains
   each track their own stack without synchronization. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let with_ ~name f =
  let s = Sink.current () in
  if s == Sink.null then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let prof_on = Prof.is_enabled () in
    let gc0 = if prof_on then Prof.take () else Prof.zero in
    let start = Clock.now () in
    let snap = Metrics.snapshot () in
    let csnap = Cost.snapshot () in
    Fun.protect
      ~finally:(fun () ->
        (* GC delta first: the counter-list allocations below would
           otherwise be charged to the span being closed. *)
        let prof = if prof_on then Some (Prof.since gc0) else None in
        let dur = Clock.now () -. start in
        let counters =
          List.map (fun (c, n) -> (Metrics.name c, n)) (Metrics.since snap)
        in
        let cost =
          List.map (fun (c, n) -> (Cost.name c, n)) (Cost.since csnap)
        in
        depth := d;
        (* Latency distributions for free on existing traces: every
           close feeds the per-span-name Qhist. *)
        Qhist.observe ("span." ^ name) dur;
        s.Sink.on_span { Sink.name; depth = d; start; dur; counters; cost; prof })
      f
  end

let event ?(detail = "") name =
  let s = Sink.current () in
  if s != Sink.null then
    s.Sink.on_event
      { Sink.name; depth = !(Domain.DLS.get depth_key);
        time = Clock.now (); detail }

let active () = Sink.current () != Sink.null
