(* Ambient per-request telemetry scopes.

   A scope is the request-grade sibling of [Span]: it brackets one
   unit of work and captures the Metrics counter, Cost counter and
   wall-time deltas that accumulated inside it.  The crucial
   difference is *which* deltas: a span diffs merged process-wide
   snapshots (cheap to reason about, but concurrent domains smear into
   each other's spans), while a scope diffs the calling domain's own
   accumulator ([Metrics.local_snapshot] / [Cost.local_snapshot]) —
   no lock, no merge, and exact under concurrency, because a domain's
   accumulator is written by that domain alone.  Two requests running
   on different [Vmor.Par] pool lanes therefore never see each other's
   counts, and the per-scope deltas sum to the process-wide delta.

   Scopes always run (they are how the service loop will meter
   requests), unlike spans which are free under the null sink: closing
   a scope feeds its duration into the "scope.<name>" [Qhist]
   latency histogram, and additionally emits a "scope" record when a
   sink is active.  Nesting depth is per-domain, like [Span]'s.

   Composition with deadlines is by nesting, not coupling: wrap the
   scope body in [Robust.Budget.with_budget] (or vice versa) for
   per-request deadlines — [Obs] sits below [Robust] in the library
   graph, so the scope layer itself stays budget-agnostic. *)

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

type t = {
  name : string;
  depth : int;
  start : float;
  dur : float;
  counters : (Metrics.counter * int) list;
  cost : (Cost.counter * int) list;
}

let close ~name ~depth ~start msnap csnap =
  let counters = Metrics.local_since msnap in
  let cost = Cost.local_since csnap in
  let dur = Clock.now () -. start in
  Qhist.observe ("scope." ^ name) dur;
  let s = Sink.current () in
  if s != Sink.null then
    s.Sink.on_scope
      {
        Sink.name;
        depth;
        start;
        dur;
        counters = List.map (fun (c, n) -> (Metrics.name c, n)) counters;
        cost = List.map (fun (c, n) -> (Cost.name c, n)) cost;
      };
  { name; depth; start; dur; counters; cost }

let with_result ~name f =
  let depth = Domain.DLS.get depth_key in
  let d = !depth in
  depth := d + 1;
  let start = Clock.now () in
  let msnap = Metrics.local_snapshot () in
  let csnap = Cost.local_snapshot () in
  match f () with
  | v ->
    depth := d;
    (v, close ~name ~depth:d ~start msnap csnap)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    depth := d;
    ignore (close ~name ~depth:d ~start msnap csnap);
    Printexc.raise_with_backtrace e bt

let with_ ~name f = fst (with_result ~name f)

let depth () = !(Domain.DLS.get depth_key)
