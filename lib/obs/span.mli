(** Hierarchical timed spans.

    A span measures one named region of work; spans nest, and every
    finished span carries the nonzero {!Metrics} counter deltas that
    accumulated inside it (inclusive of children).  With the default
    null sink the overhead of an un-traced span is one load and one
    pointer comparison. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a span.  The record is delivered
    to the active {!Sink} when [f] returns {e or raises} (the
    exception is re-raised). *)

val event : ?detail:string -> string -> unit
(** Emit a point event at the current depth (e.g. a recovery action).
    No-op under the null sink. *)

val active : unit -> bool
(** [true] iff spans are currently being recorded. *)
