(** Process-wide kernel counters, gauges and histograms.

    Counters attribute reduction/simulation cost to the kernels the
    paper's complexity claims are stated in: LU factorizations,
    shifted Kronecker-sum solves, matrix-vector products, Krylov
    (Arnoldi) iterations, deflation discards, ODE steps/rejections,
    Newton iterations and recovery-ladder attempts.

    Counting is on by default and domain-safe: each domain increments
    its own accumulator array (held in a [Domain.DLS] slot), and
    readers merge all per-domain arrays under a mutex.  After
    [Domain.join] the merged totals are exact; while other domains are
    still running a read observes some interleaving of word-sized
    stores, never a torn value.  [set_enabled false] makes every
    recording operation a no-op, giving benchmarks an uninstrumented
    baseline. *)

type counter =
  | Lu_factor          (** dense LU factorizations ([La.Lu.factor]) *)
  | Lu_solve           (** triangular solves against an LU factor *)
  | Shifted_solve      (** shifted Kronecker-sum solves ([La.Ksolve]) *)
  | Matvec             (** dense matrix-vector products on Krylov paths *)
  | Arnoldi_iter       (** Arnoldi/MGS iterations *)
  | Deflation_discard  (** basis candidates dropped by QR deflation *)
  | Ode_step           (** accepted integrator steps *)
  | Ode_rejected       (** rejected/halved integrator steps *)
  | Newton_iter        (** Newton iterations inside implicit integrators *)
  | Ladder_attempt     (** solver fallback-ladder rung executions *)
  | Recovery_event     (** events recorded via [Robust.Report] *)
  | Budget_poll        (** slow-path budget polls ([Robust.Budget]) *)

val all : counter list
(** Every counter, in rendering order. *)

val name : counter -> string
(** Stable snake_case name used in every sink format. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to a counter; no-op when disabled. *)

val get : counter -> int

val set_enabled : bool -> unit
(** Globally enable/disable all metric recording (default: enabled). *)

val is_enabled : unit -> bool

val set_gauge : string -> float -> unit
(** Record a last-write-wins named value (e.g. ["reduced_order"]). *)

val gauges : unit -> (string * float) list
(** All gauges, sorted by name. *)

type hstat = { count : int; sum : float; sumsq : float;
               minv : float; maxv : float }
(** Summary view of one named histogram.  Backed by {!Qhist}: the full
    bucketed distribution (and its deterministic quantiles) is
    available through [Qhist.view] under the same name. *)

val observe : string -> float -> unit
(** Feed one observation into the named histogram (a {!Qhist}
    observation on the calling domain's accumulator). *)

val histograms : unit -> (string * hstat) list
(** All histograms, merged across domains, sorted by name. *)

val hstddev : hstat -> float
(** Population standard deviation from [sum]/[sumsq], clamped at zero
    against cancellation; [nan] when [count = 0]. *)

type snapshot

val snapshot : unit -> snapshot
(** Capture current merged counter values (one locked merge pass). *)

val since : snapshot -> (counter * int) list
(** Counter deltas accumulated after [snapshot], nonzero ones only. *)

type local_snapshot
(** The calling domain's own accumulator at a point in time. *)

val local_snapshot : unit -> local_snapshot
(** Copy the calling domain's counter array — no lock, no merge.  The
    {!Scope} primitive: because a domain's array is written by that
    domain alone, a [local_since] delta taken on the same domain is
    exact even while other domains run concurrently. *)

val local_since : local_snapshot -> (counter * int) list
(** Nonzero deltas on the calling domain since [local_snapshot].  Only
    meaningful on the domain that took the snapshot. *)

val reset : unit -> unit
(** Zero all counters and drop all gauges/histograms. *)

val to_csv_string : unit -> string
(** CSV summary: [kind,name,value,count,sum,sumsq,min,max,stddev]
    rows — counters and gauges fill [value], histograms fill the
    per-stat columns. *)

val write_csv : string -> unit
(** Write {!to_csv_string} to a file. *)

val render_table : unit -> string
(** Human-readable table (the [--metrics] / [VMOR_METRICS=1] output). *)
