(* Process-wide kernel counters, gauges and histograms.

   Counters are the hot primitive: each domain accumulates into its own
   flat int array held in a [Domain.DLS] slot, so an increment is one
   atomic-flag load, one DLS fetch and one bounds-checked store — no
   lock, no contention, no false sharing between domains.  Readers
   merge every registered per-domain array under [mu]; after
   [Domain.join] the merge is exact because the child's publishes
   happen-before the join.

   [set_enabled false] turns every recording operation into a no-op,
   which gives the overhead benchmark a genuine uninstrumented
   baseline.  Gauges and histograms are string-keyed, only touched on
   cold paths (end of a reduction, end of a simulation), and guarded
   by the same mutex. *)

type counter =
  | Lu_factor
  | Lu_solve
  | Shifted_solve
  | Matvec
  | Arnoldi_iter
  | Deflation_discard
  | Ode_step
  | Ode_rejected
  | Newton_iter
  | Ladder_attempt
  | Recovery_event
  | Budget_poll

let n_counters = 12

let index = function
  | Lu_factor -> 0
  | Lu_solve -> 1
  | Shifted_solve -> 2
  | Matvec -> 3
  | Arnoldi_iter -> 4
  | Deflation_discard -> 5
  | Ode_step -> 6
  | Ode_rejected -> 7
  | Newton_iter -> 8
  | Ladder_attempt -> 9
  | Recovery_event -> 10
  | Budget_poll -> 11

let name = function
  | Lu_factor -> "lu_factor"
  | Lu_solve -> "lu_solve"
  | Shifted_solve -> "shifted_solve"
  | Matvec -> "matvec"
  | Arnoldi_iter -> "arnoldi_iter"
  | Deflation_discard -> "deflation_discard"
  | Ode_step -> "ode_step"
  | Ode_rejected -> "ode_rejected"
  | Newton_iter -> "newton_iter"
  | Ladder_attempt -> "ladder_attempt"
  | Recovery_event -> "recovery_event"
  | Budget_poll -> "budget_poll"

let all =
  [ Lu_factor; Lu_solve; Shifted_solve; Matvec; Arnoldi_iter;
    Deflation_discard; Ode_step; Ode_rejected; Newton_iter;
    Ladder_attempt; Recovery_event; Budget_poll ]

let mu = Mutex.create ()

(* Every per-domain counter array ever handed out.  Arrays outlive
   their domain so joined children keep contributing to the merge. *)
let domains : int array list ref = ref [] [@@vmor.sync "guarded by mu"]

let slot =
  Domain.DLS.new_key (fun () ->
      let a = Array.make n_counters 0 in
      Mutex.protect mu (fun () -> domains := a :: !domains);
      a)

let enabled = Atomic.make true

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let incr ?(by = 1) c =
  if Atomic.get enabled then begin
    let a = Domain.DLS.get slot in
    let i = index c in
    a.(i) <- a.(i) + by
  end

(* Merge-on-read: sum every registered domain's array under the lock. *)
let merged () =
  Mutex.protect mu (fun () ->
      let out = Array.make n_counters 0 in
      List.iter
        (fun a ->
          for i = 0 to n_counters - 1 do
            out.(i) <- out.(i) + a.(i)
          done)
        !domains;
      out)

let get c = (merged ()).(index c)

(* ------------------------------------------------------------------ *)
(* Gauges: last-write-wins named floats.                              *)

let gauge_tbl : (string, float) Hashtbl.t =
  Hashtbl.create 16 [@@vmor.sync "guarded by mu"]

let set_gauge k v =
  if Atomic.get enabled then
    Mutex.protect mu (fun () -> Hashtbl.replace gauge_tbl k v)

let gauges () =
  Mutex.protect mu (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauge_tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Histograms: backed by the deterministic bucketed [Qhist] store.    *)

type hstat = { count : int; sum : float; sumsq : float;
               minv : float; maxv : float }

let observe k v = if Atomic.get enabled then Qhist.observe k v

let hstat_of_view (v : Qhist.view) =
  { count = v.Qhist.count; sum = v.Qhist.sum; sumsq = v.Qhist.sumsq;
    minv = v.Qhist.minv; maxv = v.Qhist.maxv }

let histograms () =
  List.map (fun (k, v) -> (k, hstat_of_view v)) (Qhist.all ())

let hstddev (h : hstat) =
  if h.count = 0 then Float.nan
  else begin
    let m = h.sum /. float_of_int h.count in
    sqrt (Float.max 0.0 ((h.sumsq /. float_of_int h.count) -. (m *. m)))
  end

(* ------------------------------------------------------------------ *)
(* Snapshots and deltas.                                              *)

type snapshot = int array

let snapshot () = merged ()

let since (snap : snapshot) =
  let now = merged () in
  List.filter_map
    (fun c ->
      let d = now.(index c) - snap.(index c) in
      if d = 0 then None else Some (c, d))
    all

let reset () =
  Mutex.protect mu (fun () ->
      List.iter (fun a -> Array.fill a 0 n_counters 0) !domains;
      Hashtbl.reset gauge_tbl);
  Qhist.reset ()

(* ------------------------------------------------------------------ *)
(* Domain-local snapshots (the [Scope] primitive).

   [local_snapshot] copies only the calling domain's accumulator —
   no lock, no merge — and [local_since] diffs against it on the same
   domain.  Because a domain's array is written by that domain alone,
   the delta is exact even while other domains are running: this is
   what keeps concurrent scopes from smearing each other's counts. *)

type local_snapshot = int array

let local_snapshot () = Array.copy (Domain.DLS.get slot)

let local_since (snap : local_snapshot) =
  let a = Domain.DLS.get slot in
  List.filter_map
    (fun c ->
      let d = a.(index c) - snap.(index c) in
      if d = 0 then None else Some (c, d))
    all

(* ------------------------------------------------------------------ *)
(* Rendering.                                                         *)

(* Histogram statistics get proper per-stat columns; counter and gauge
   rows carry their single value in [value] and leave the stat columns
   empty. *)
let to_csv_string () =
  let now = merged () in
  let b = Buffer.create 512 in
  Buffer.add_string b "kind,name,value,count,sum,sumsq,min,max,stddev\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "counter,%s,%d,,,,,,\n" (name c) now.(index c)))
    all;
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf "gauge,%s,%.9g,,,,,,\n" k v))
    (gauges ());
  List.iter
    (fun (k, h) ->
      Buffer.add_string b
        (Printf.sprintf "histogram,%s,,%d,%.9g,%.9g,%.9g,%.9g,%.9g\n"
           k h.count h.sum h.sumsq h.minv h.maxv (hstddev h)))
    (histograms ());
  Buffer.contents b

let write_csv path =
  let oc = open_out path in
  output_string oc (to_csv_string ());
  close_out oc

let render_table () =
  let now = merged () in
  let b = Buffer.create 512 in
  let rule = String.make 46 '-' in
  Buffer.add_string b "vmor metrics\n";
  Buffer.add_string b (rule ^ "\n");
  List.iter
    (fun c ->
      let v = now.(index c) in
      if v > 0 then
        Buffer.add_string b (Printf.sprintf "  %-24s %12d\n" (name c) v))
    all;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-24s %12.6g\n" k v))
    (gauges ());
  List.iter
    (fun (k, h) ->
      Buffer.add_string b
        (Printf.sprintf "  %-24s n=%d avg=%.4g sd=%.4g min=%.4g max=%.4g\n" k
           h.count
           (h.sum /. float_of_int (max 1 h.count))
           (if h.count = 0 then 0.0 else hstddev h)
           h.minv h.maxv))
    (histograms ());
  Buffer.add_string b (rule ^ "\n");
  Buffer.contents b
