(* Process-wide kernel counters, gauges and histograms.

   Counters are the hot primitive: a fixed enum indexing a flat int
   array, so an increment is one bounds-checked store guarded by one
   boolean load.  [set_enabled false] turns every increment into a
   no-op, which gives the overhead benchmark a genuine uninstrumented
   baseline.  Gauges and histograms are string-keyed and only touched
   on cold paths (end of a reduction, end of a simulation). *)

type counter =
  | Lu_factor
  | Lu_solve
  | Shifted_solve
  | Matvec
  | Arnoldi_iter
  | Deflation_discard
  | Ode_step
  | Ode_rejected
  | Newton_iter
  | Ladder_attempt
  | Recovery_event

let n_counters = 11

let index = function
  | Lu_factor -> 0
  | Lu_solve -> 1
  | Shifted_solve -> 2
  | Matvec -> 3
  | Arnoldi_iter -> 4
  | Deflation_discard -> 5
  | Ode_step -> 6
  | Ode_rejected -> 7
  | Newton_iter -> 8
  | Ladder_attempt -> 9
  | Recovery_event -> 10

let name = function
  | Lu_factor -> "lu_factor"
  | Lu_solve -> "lu_solve"
  | Shifted_solve -> "shifted_solve"
  | Matvec -> "matvec"
  | Arnoldi_iter -> "arnoldi_iter"
  | Deflation_discard -> "deflation_discard"
  | Ode_step -> "ode_step"
  | Ode_rejected -> "ode_rejected"
  | Newton_iter -> "newton_iter"
  | Ladder_attempt -> "ladder_attempt"
  | Recovery_event -> "recovery_event"

let all =
  [ Lu_factor; Lu_solve; Shifted_solve; Matvec; Arnoldi_iter;
    Deflation_discard; Ode_step; Ode_rejected; Newton_iter;
    Ladder_attempt; Recovery_event ]

let counts = Array.make n_counters 0
let enabled = ref true

let set_enabled b = enabled := b
let is_enabled () = !enabled

let incr ?(by = 1) c = if !enabled then counts.(index c) <- counts.(index c) + by
let get c = counts.(index c)

(* ------------------------------------------------------------------ *)
(* Gauges: last-write-wins named floats.                              *)

let gauge_tbl : (string, float) Hashtbl.t = Hashtbl.create 16

let set_gauge k v = if !enabled then Hashtbl.replace gauge_tbl k v

let gauges () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauge_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Histograms: streaming count/sum/min/max per name.                  *)

type hstat = { count : int; sum : float; minv : float; maxv : float }

let hist_tbl : (string, hstat) Hashtbl.t = Hashtbl.create 16

let observe k v =
  if !enabled then
    let h =
      match Hashtbl.find_opt hist_tbl k with
      | None -> { count = 1; sum = v; minv = v; maxv = v }
      | Some h ->
        { count = h.count + 1; sum = h.sum +. v;
          minv = min h.minv v; maxv = max h.maxv v }
    in
    Hashtbl.replace hist_tbl k h

let histograms () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Snapshots and deltas.                                              *)

type snapshot = int array

let snapshot () = Array.copy counts

let since (snap : snapshot) =
  List.filter_map
    (fun c ->
      let d = counts.(index c) - snap.(index c) in
      if d = 0 then None else Some (c, d))
    all

let reset () =
  Array.fill counts 0 n_counters 0;
  Hashtbl.reset gauge_tbl;
  Hashtbl.reset hist_tbl

(* ------------------------------------------------------------------ *)
(* Rendering.                                                         *)

let to_csv_string () =
  let b = Buffer.create 512 in
  Buffer.add_string b "kind,name,value\n";
  List.iter
    (fun c -> Buffer.add_string b (Printf.sprintf "counter,%s,%d\n" (name c) (get c)))
    all;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "gauge,%s,%.9g\n" k v))
    (gauges ());
  List.iter
    (fun (k, h) ->
      Buffer.add_string b
        (Printf.sprintf "histogram,%s,count=%d;sum=%.9g;min=%.9g;max=%.9g\n"
           k h.count h.sum h.minv h.maxv))
    (histograms ());
  Buffer.contents b

let write_csv path =
  let oc = open_out path in
  output_string oc (to_csv_string ());
  close_out oc

let render_table () =
  let b = Buffer.create 512 in
  let rule = String.make 46 '-' in
  Buffer.add_string b "vmor metrics\n";
  Buffer.add_string b (rule ^ "\n");
  List.iter
    (fun c ->
      if get c > 0 then
        Buffer.add_string b (Printf.sprintf "  %-24s %12d\n" (name c) (get c)))
    all;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-24s %12.6g\n" k v))
    (gauges ());
  List.iter
    (fun (k, h) ->
      Buffer.add_string b
        (Printf.sprintf "  %-24s n=%d avg=%.4g min=%.4g max=%.4g\n" k h.count
           (h.sum /. float_of_int (max 1 h.count))
           h.minv h.maxv))
    (histograms ());
  Buffer.add_string b (rule ^ "\n");
  Buffer.contents b
