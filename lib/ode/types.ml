(* Shared ODE-solver types: systems x' = f(t, x), solver statistics and
   sampled solutions. *)

open La

type system = {
  dim : int;
  rhs : float -> Vec.t -> Vec.t;  (* f(t, x) *)
  jac : (float -> Vec.t -> Mat.t) option;  (* df/dx, for implicit solvers *)
}

type stats = {
  mutable steps : int;  (* accepted steps *)
  mutable rejected : int;  (* rejected (adaptive) steps *)
  mutable rhs_evals : int;
  mutable jac_evals : int;
  mutable newton_iters : int;
}

let new_stats () =
  { steps = 0; rejected = 0; rhs_evals = 0; jac_evals = 0; newton_iters = 0 }

type solution = {
  times : float array;
  states : Vec.t array;  (* states.(i) is x(times.(i)) *)
  stats : stats;
  partial : bool;  (* true when a compute budget truncated the series
                      before t1; times/states cover only the integrated
                      prefix of the sample grid *)
}

let output_component sol ~index = Array.map (fun x -> x.(index)) sol.states

let output_dot sol ~(c : Vec.t) = Array.map (fun x -> Vec.dot c x) sol.states

(* Uniform sample grid with [samples] points including both endpoints. *)
let sample_times ~t0 ~t1 ~samples =
  if samples < 2 then invalid_arg "sample_times: need at least 2 samples";
  Array.init samples (fun i ->
      t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (samples - 1)))

exception Step_failure of string
