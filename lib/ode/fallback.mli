(** Transient-solver fallback ladder: RKF45 first, then (when the
    system provides a Jacobian) the A-stable implicit trapezoidal
    rule. Escalations are recorded against the optional recorder with
    action ["fallback:imtrap"]. *)

open La

val classify : ?loc:Robust.Error.location -> exn -> Robust.Error.t option
(** Map solver exceptions ([Types.Step_failure], typed robust errors,
    and the linear-algebra failures recognized by [La.Ladder.classify])
    to the error taxonomy; [None] for foreign exceptions. *)

val try_integrate :
  Types.system ->
  t0:float ->
  t1:float ->
  x0:Vec.t ->
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?hmax:float ->
  ?max_steps:int ->
  ?recorder:Robust.Report.recorder ->
  samples:int ->
  unit ->
  (Types.solution, Robust.Error.t) result
(** Run the ladder; [Error] carries [Budget_exhausted] when every rung
    fails. Solutions with non-finite states are rejected and trigger
    escalation. *)

val integrate :
  Types.system ->
  t0:float ->
  t1:float ->
  x0:Vec.t ->
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?hmax:float ->
  ?max_steps:int ->
  ?recorder:Robust.Report.recorder ->
  samples:int ->
  unit ->
  Types.solution
(** Like [try_integrate] but raising [Robust.Error.Error] on total
    failure. *)
