(** Runge–Kutta–Fehlberg 4(5) with adaptive step-size control — the
    default transient engine for the (mildly stiff) quadratized circuit
    models. *)

open La

val default_rtol : float
val default_atol : float

(** Integrate from [t0] to [t1], sampling the solution on a uniform grid
    of [samples] points. [h0] is the initial step, [hmax] the cap
    (default: a tenth of the span).

    Non-finite step results (NaN/Inf from the rhs or an overflowing
    state) are treated as rejected attempts and halve the step until
    [hmin]; only then is [Types.Step_failure] raised. [max_steps]
    bounds the total attempted steps (accepted + rejected) so stiff
    systems fail fast instead of grinding — exceeding it raises
    [Types.Step_failure]. Recoveries and final failures are recorded
    against [recorder]. *)
val integrate :
  Types.system ->
  t0:float ->
  t1:float ->
  x0:Vec.t ->
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?hmax:float ->
  ?max_steps:int ->
  ?recorder:Robust.Report.recorder ->
  samples:int ->
  unit ->
  Types.solution
