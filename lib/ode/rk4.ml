(* Classical fixed-step fourth-order Runge-Kutta. *)

open La

let step (sys : Types.system) stats t h (x : Vec.t) : Vec.t =
  let open Types in
  (* Nominal stepper charge: three stage combines (add + scale) plus
     the four-term output axpy; rhs evaluations charge themselves. *)
  let n = Array.length x in
  Obs.Cost.charge Obs.Cost.Flops_stepper (14 * n)
    ~read:(15 * n) ~written:(11 * n);
  let k1 = sys.rhs t x in
  let k2 = sys.rhs (t +. (0.5 *. h)) (Vec.add x (Vec.scale (0.5 *. h) k1)) in
  let k3 = sys.rhs (t +. (0.5 *. h)) (Vec.add x (Vec.scale (0.5 *. h) k2)) in
  let k4 = sys.rhs (t +. h) (Vec.add x (Vec.scale h k3)) in
  stats.rhs_evals <- stats.rhs_evals + 4;
  stats.steps <- stats.steps + 1;
  let out = Vec.copy x in
  Vec.axpy ~alpha:(h /. 6.0) k1 out;
  Vec.axpy ~alpha:(h /. 3.0) k2 out;
  Vec.axpy ~alpha:(h /. 3.0) k3 out;
  Vec.axpy ~alpha:(h /. 6.0) k4 out;
  out

(* Integrate to each requested output time with internal step [h]
   (the step is shortened to land exactly on sample instants). *)
let integrate (sys : Types.system) ~t0 ~t1 ~(x0 : Vec.t) ~h ~samples :
    Types.solution =
  if Array.length x0 <> sys.dim then invalid_arg "Rk4.integrate: x0 dimension";
  if h <= 0.0 then invalid_arg "Rk4.integrate: h must be positive";
  let stats = Types.new_stats () in
  let times = Types.sample_times ~t0 ~t1 ~samples in
  let states = Array.make samples x0 in
  let x = ref (Vec.copy x0) and t = ref t0 in
  states.(0) <- Vec.copy x0;
  (* Budget truncation: on a spent budget stop stepping and return the
     samples integrated so far flagged [partial] — a shorter valid
     series, not an exception. *)
  let filled = ref 1 and stopped = ref false in
  (try
     for i = 1 to samples - 1 do
       let target = times.(i) in
       while !t < target -. 1e-14 *. Float.abs target do
         if Robust.Budget.tick_ode_step "ode.Rk4.integrate" <> None then begin
           stopped := true;
           raise Exit
         end;
         let step_h = Float.min h (target -. !t) in
         x := step sys stats !t step_h !x;
         if not (Vec.is_finite !x) then
           raise (Types.Step_failure
                    (Printf.sprintf "Rk4: non-finite state at t=%.6g" !t));
         t := !t +. step_h
       done;
       states.(i) <- Vec.copy !x;
       filled := i + 1
     done
   with Exit -> ());
  if not !stopped then { Types.times; states; stats; partial = false }
  else
    {
      Types.times = Array.sub times 0 !filled;
      states = Array.sub states 0 !filled;
      stats;
      partial = true;
    }
