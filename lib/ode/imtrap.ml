(* Implicit trapezoidal rule (A-stable, 2nd order) with a modified
   Newton iteration — the stiff-circuit workhorse. The factored
   iteration matrix I - h/2 J is kept across steps (chord Newton) and
   only rebuilt when the step size changes or the iteration stalls on
   the stale Jacobian, the standard circuit-simulator compromise: for
   linear(ized) systems the per-step O(n^3) factorization collapses to
   one, and mildly nonlinear systems refactor only when convergence
   actually degrades. *)

open La

let default_newton_tol = 1e-10

let default_max_newton = 12

let integrate (sys : Types.system) ~t0 ~t1 ~(x0 : Vec.t) ~h
    ?(newton_tol = default_newton_tol) ?(max_newton = default_max_newton)
    ~samples () : Types.solution =
  if Array.length x0 <> sys.dim then invalid_arg "Imtrap.integrate: x0 dim";
  if h <= 0.0 then invalid_arg "Imtrap.integrate: h must be positive";
  Obs.Span.with_ ~name:"imtrap.integrate" @@ fun () ->
  let jac =
    match sys.Types.jac with
    | Some j -> j
    | None -> invalid_arg "Imtrap.integrate: system has no Jacobian"
  in
  let stats = Types.new_stats () in
  let times = Types.sample_times ~t0 ~t1 ~samples in
  let states = Array.make samples x0 in
  states.(0) <- Vec.copy x0;
  let x = ref (Vec.copy x0) and t = ref t0 in
  let n = sys.Types.dim in
  let id = Mat.identity n in
  (* Factored I - h/2 J(t, x), keyed by the step size it was built
     for; invalidated on stall or near-budget convergence. *)
  let cache : (float * Lu.t) option ref = ref None in
  let refactor tn xn step_h =
    let j = jac tn xn in
    stats.Types.jac_evals <- stats.Types.jac_evals + 1;
    (* iteration-matrix assembly (Mat.sub + Mat.scale are un-leafed);
       the factorization below charges itself *)
    Obs.Cost.charge Obs.Cost.Flops_stepper (2 * n * n)
      ~read:(2 * n * n) ~written:(2 * n * n);
    let iter_mat = Mat.sub id (Mat.scale (0.5 *. step_h) j) in
    let lu = Lu.factor iter_mat in
    cache := Some (step_h, lu);
    lu
  in
  (* Budget truncation: a spent compute budget ends the integration at
     the last completed sample; the prefix is returned flagged
     [partial]. The Newton loop below is left unpolled — it is bounded
     by [max_newton], so at most one step's worth of work follows a
     poll. *)
  let filled = ref 1 and stopped = ref false in
  (try
     for i = 1 to samples - 1 do
       let target = times.(i) in
       while !t < target -. 1e-14 *. Float.abs target do
         if Robust.Budget.tick_ode_step "ode.Imtrap.integrate" <> None then begin
           stopped := true;
           raise Exit
         end;
         let step_h = Float.min h (target -. !t) in
      let tn = !t and tn1 = !t +. step_h in
      let fn = sys.Types.rhs tn !x in
      stats.Types.rhs_evals <- stats.Types.rhs_evals + 1;
      (* Modified Newton on F(z) = z - x_n - h/2 (f_n + f(t_{n+1}, z)),
         predictor: forward Euler. *)
      let newton lu =
        let z = ref (Vec.add !x (Vec.scale step_h fn)) in
        let converged = ref false in
        let iters = ref 0 in
        (while (not !converged) && !iters < max_newton do
          incr iters;
          stats.Types.newton_iters <- stats.Types.newton_iters + 1;
          Obs.Metrics.incr Obs.Metrics.Newton_iter;
          (* nominal per-iteration charge: residual assembly, the
             correction axpy and both convergence norms; the rhs and
             the LU solve charge themselves *)
          Obs.Cost.charge Obs.Cost.Flops_stepper (11 * n)
            ~read:(14 * n) ~written:(8 * n);
          let fz = sys.Types.rhs tn1 !z in
          stats.Types.rhs_evals <- stats.Types.rhs_evals + 1;
          (* residual F(z) *)
          let res = Vec.sub !z !x in
          Vec.axpy ~alpha:(-0.5 *. step_h) fn res;
          Vec.axpy ~alpha:(-0.5 *. step_h) fz res;
          let delta = Lu.solve lu res in
          Vec.axpy ~alpha:(-1.0) delta !z;
          if Vec.norm2 delta <= newton_tol *. (1.0 +. Vec.norm2 !z) then
            converged := true
        done)
        [@vmor.unbudgeted
          "bounded by max_newton; at most one step's Newton solve trails \
           the per-step budget poll"];
        (!z, !converged, !iters)
      in
      let lu, fresh =
        match !cache with
        | Some (h_c, lu) when Float.equal h_c step_h -> (lu, false)
        | _ -> (refactor tn !x step_h, true)
      in
      let z, converged, iters =
        match newton lu with
        | (_, false, _) when not fresh ->
          (* the stale Jacobian stalled the chord iteration: rebuild at
             the current state and give Newton one fresh chance *)
          newton (refactor tn !x step_h)
        | r -> r
      in
      (* Nearly exhausting the iteration budget on a reused factor
         means the Jacobian has drifted: refresh on the next step. *)
      if (not fresh) && iters > max_newton / 2 then cache := None;
      Obs.Metrics.observe "imtrap.newton_iters" (float_of_int iters);
      Obs.Metrics.observe "imtrap.step_size" step_h;
      if not converged then
        raise
          (Types.Step_failure
             (Printf.sprintf "Imtrap: Newton stalled at t=%.6g (h=%.3g)" !t
                step_h));
      if not (Vec.is_finite z) then
        raise (Types.Step_failure
                 (Printf.sprintf "Imtrap: non-finite state at t=%.6g" !t));
      stats.Types.steps <- stats.Types.steps + 1;
      Obs.Metrics.incr Obs.Metrics.Ode_step;
      x := z;
      t := tn1
       done;
       states.(i) <- Vec.copy !x;
       filled := i + 1
     done
   with Exit -> ());
  if not !stopped then { Types.times; states; stats; partial = false }
  else
    {
      Types.times = Array.sub times 0 !filled;
      states = Array.sub states 0 !filled;
      stats;
      partial = true;
    }
