(* Transient-solver fallback ladder: adaptive RKF45 first, and when it
   fails (step underflow on a NaN-producing rhs, or an exhausted step
   budget on a stiff system) retry with the A-stable implicit
   trapezoidal rule. The second rung only exists when the system
   carries a Jacobian — Imtrap requires one. *)

open La

let default_loc = Robust.Error.loc ~subsystem:"ode" ~operation:"Fallback.integrate"

let classify ?(loc = default_loc) : exn -> Robust.Error.t option = function
  | Types.Step_failure detail ->
    Some (Robust.Error.Step_failure { loc; time = Float.nan; detail })
  | Robust.Error.Error e -> Some e
  | exn -> Ladder.classify ~loc exn

(* Fixed Imtrap step: fine enough to resolve the sampled output, but
   bounded below so a pathological sample count cannot freeze. *)
let imtrap_h ~t0 ~t1 ~samples =
  let span = Float.abs (t1 -. t0) in
  Float.max (1e-9 *. Float.max 1.0 span)
    (span /. (8.0 *. float_of_int (max 2 samples)))

let try_integrate (sys : Types.system) ~t0 ~t1 ~(x0 : Vec.t) ?rtol ?atol ?h0
    ?hmax ?max_steps ?recorder ~samples () :
    (Types.solution, Robust.Error.t) result =
  let rkf45 () =
    Rkf45.integrate sys ~t0 ~t1 ~x0 ?rtol ?atol ?h0 ?hmax ?max_steps ?recorder
      ~samples ()
  in
  let counted (name, f) =
    (name, fun () -> Obs.Metrics.incr Obs.Metrics.Ladder_attempt; f ())
  in
  let rungs =
    List.map counted
      (("rkf45", rkf45)
      ::
      (match sys.Types.jac with
      | None -> []
      | Some _ ->
        let h = imtrap_h ~t0 ~t1 ~samples in
        [ ("imtrap", fun () -> Imtrap.integrate sys ~t0 ~t1 ~x0 ~h ~samples ()) ]))
  in
  let finite sol = Array.for_all Vec.is_finite sol.Types.states in
  Robust.Policy.run_ladder ?recorder ~loc:default_loc ~classify
    ~validate:finite rungs

let integrate sys ~t0 ~t1 ~x0 ?rtol ?atol ?h0 ?hmax ?max_steps ?recorder
    ~samples () : Types.solution =
  match
    try_integrate sys ~t0 ~t1 ~x0 ?rtol ?atol ?h0 ?hmax ?max_steps ?recorder
      ~samples ()
  with
  | Ok sol -> sol
  | Error e -> Robust.Error.raise_error e
