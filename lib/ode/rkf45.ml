(* Runge-Kutta-Fehlberg 4(5) with adaptive step-size control. *)

open La

(* Fehlberg tableau. *)
let a2 = 0.25

let a3 = [| 3.0 /. 32.0; 9.0 /. 32.0 |]

let a4 = [| 1932.0 /. 2197.0; -7200.0 /. 2197.0; 7296.0 /. 2197.0 |]

let a5 = [| 439.0 /. 216.0; -8.0; 3680.0 /. 513.0; -845.0 /. 4104.0 |]

let a6 =
  [| -8.0 /. 27.0; 2.0; -3544.0 /. 2565.0; 1859.0 /. 4104.0; -11.0 /. 40.0 |]

(* 5th order solution weights *)
let b5 =
  [|
    16.0 /. 135.0;
    0.0;
    6656.0 /. 12825.0;
    28561.0 /. 56430.0;
    -9.0 /. 50.0;
    2.0 /. 55.0;
  |]

(* 4th order (embedded) weights *)
let b4 =
  [|
    25.0 /. 216.0;
    0.0;
    1408.0 /. 2565.0;
    2197.0 /. 4104.0;
    -0.2;
    0.0;
  |]

let c = [| 0.0; 0.25; 0.375; 12.0 /. 13.0; 1.0; 0.5 |]

(* One embedded step: returns (5th-order next state, error estimate). *)
let attempt (sys : Types.system) stats t h (x : Vec.t) =
  let open Types in
  (* Nominal per-attempt charge, identical for accepted and rejected
     attempts: the tableau's 24 nonzero-coefficient axpys (the
     Contract.nonzero skips act on fixed constants, so the count is a
     constant of the method), seven stage copies, the embedded
     difference, and the caller's weighted RMS error norm.  Rhs
     evaluations charge themselves. *)
  let n = Array.length x in
  Obs.Cost.charge Obs.Cost.Flops_stepper (54 * n)
    ~read:(59 * n) ~written:(32 * n);
  let combine coeffs ks =
    let out = Vec.copy x in
    Array.iteri
      (fun i coef -> if Contract.nonzero coef then Vec.axpy ~alpha:(h *. coef) ks.(i) out)
      coeffs;
    out
  in
  let k = Array.make 6 x in
  k.(0) <- sys.rhs t x;
  k.(1) <- sys.rhs (t +. (c.(1) *. h)) (combine [| a2 |] k);
  k.(2) <- sys.rhs (t +. (c.(2) *. h)) (combine a3 k);
  k.(3) <- sys.rhs (t +. (c.(3) *. h)) (combine a4 k);
  k.(4) <- sys.rhs (t +. (c.(4) *. h)) (combine a5 k);
  k.(5) <- sys.rhs (t +. (c.(5) *. h)) (combine a6 k);
  stats.rhs_evals <- stats.rhs_evals + 6;
  let x5 = combine b5 k in
  let x4 = combine b4 k in
  (x5, Vec.sub x5 x4)

let default_rtol = 1e-7

let default_atol = 1e-10

let step_loc = Robust.Error.loc ~subsystem:"ode" ~operation:"Rkf45.integrate"

let integrate (sys : Types.system) ~t0 ~t1 ~(x0 : Vec.t) ?(rtol = default_rtol)
    ?(atol = default_atol) ?h0 ?hmax ?(max_steps = max_int) ?recorder ~samples
    () : Types.solution =
  if Array.length x0 <> sys.dim then invalid_arg "Rkf45.integrate: x0 dimension";
  Obs.Span.with_ ~name:"rkf45.integrate" @@ fun () ->
  let stats = Types.new_stats () in
  let span = t1 -. t0 in
  let hmax = Option.value hmax ~default:(span /. 10.0) in
  let h = ref (Option.value h0 ~default:(span /. 1000.0)) in
  let times = Types.sample_times ~t0 ~t1 ~samples in
  let states = Array.make samples x0 in
  states.(0) <- Vec.copy x0;
  let x = ref (Vec.copy x0) and t = ref t0 in
  let hmin = 1e-13 *. Float.max 1.0 (Float.abs span) in
  (* Records at most one event per contiguous run of non-finite
     attempts, so a single recovered NaN shows as one halve-step. *)
  let nonfinite_streak = ref false in
  (* Consecutive rejected attempts; a long streak marks a window where
     the controller is fighting the dynamics (stiffness, a kink). *)
  let reject_streak = ref 0 in
  let close_streak () =
    if !reject_streak > 0 then begin
      Obs.Metrics.observe "rkf45.reject_streak" (float_of_int !reject_streak);
      if !reject_streak >= 3 then
        Obs.Health.emit
          (Obs.Health.Ode_streak
             { context = "rkf45"; time = !t; length = !reject_streak });
      reject_streak := 0
    end
  in
  let fail detail =
    let err =
      Robust.Error.Step_failure { loc = step_loc; time = !t; detail }
    in
    Robust.Report.record_opt recorder ~action:"exhausted" err;
    raise (Types.Step_failure (Printf.sprintf "Rkf45: %s at t=%.6g" detail !t))
  in
  (* Budget truncation: a spent compute budget stops the integration at
     the last completed sample and returns the prefix flagged [partial]
     rather than raising — anytime semantics for the transient solver. *)
  let filled = ref 1 and stopped = ref false in
  (try
     for i = 1 to samples - 1 do
       let target = times.(i) in
       while !t < target -. 1e-14 *. Float.abs target do
         (match Robust.Budget.tick_ode_step "ode.Rkf45.integrate" with
         | None -> ()
         | Some e ->
           Robust.Report.record_opt recorder ~action:"degrade:partial-series" e;
           stopped := true;
           raise Exit);
         if stats.steps + stats.rejected >= max_steps then
           fail (Printf.sprintf "step budget (%d) exhausted" max_steps);
      let step_h = Float.min !h (target -. !t) in
      let x5, err = attempt sys stats !t step_h !x in
      (* weighted RMS error norm *)
      let n = sys.dim in
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        let scale = atol +. (rtol *. Float.max (Float.abs !x.(j)) (Float.abs x5.(j))) in
        let e = err.(j) /. scale in
        acc := !acc +. (e *. e)
      done;
      let enorm = sqrt (!acc /. float_of_int n) in
      let finite = Vec.is_finite x5 && Float.is_finite enorm in
      if finite && (enorm <= 1.0 || step_h <= hmin) then begin
        nonfinite_streak := false;
        close_streak ();
        stats.steps <- stats.steps + 1;
        Obs.Metrics.incr Obs.Metrics.Ode_step;
        Obs.Metrics.observe "rkf45.step_size" step_h;
        Obs.Metrics.observe "rkf45.local_error" enorm;
        t := !t +. step_h;
        x := x5
      end
      else begin
        stats.rejected <- stats.rejected + 1;
        incr reject_streak;
        Obs.Metrics.incr Obs.Metrics.Ode_rejected
      end;
      if not finite then begin
        (* NaN/Inf guard: treat the attempt as rejected and halve the
           step — the error norm is meaningless, and the old factor
           update would propagate the NaN into [h] and stall forever. *)
        if not !nonfinite_streak then begin
          nonfinite_streak := true;
          Robust.Report.record_opt recorder ~action:"halve-step"
            (Robust.Error.Step_failure
               {
                 loc = step_loc;
                 time = !t;
                 detail = "non-finite step result";
               })
        end;
        if step_h <= hmin then fail "non-finite step result at minimal step";
        h := Float.max hmin (0.5 *. step_h)
      end
      else begin
        (* PI-ish step update with safety factor *)
        let factor =
          if Contract.is_zero enorm then 4.0
          else Float.min 4.0 (Float.max 0.1 (0.9 *. (enorm ** (-0.2))))
        in
        h := Float.min hmax (Float.max hmin (step_h *. factor))
      end
       done;
       states.(i) <- Vec.copy !x;
       filled := i + 1
     done
   with Exit -> ());
  close_streak ();
  if not !stopped then { Types.times; states; stats; partial = false }
  else
    {
      Types.times = Array.sub times 0 !filled;
      states = Array.sub states 0 !filled;
      stats;
      partial = true;
    }
