(** Shared ODE-solver types: systems [x' = f(t, x)], solver statistics,
    sampled solutions. *)

open La

type system = {
  dim : int;
  rhs : float -> Vec.t -> Vec.t;  (** [f(t, x)] *)
  jac : (float -> Vec.t -> Mat.t) option;
      (** [df/dx], required by implicit solvers *)
}

type stats = {
  mutable steps : int;  (** accepted steps *)
  mutable rejected : int;  (** rejected (adaptive) steps *)
  mutable rhs_evals : int;
  mutable jac_evals : int;
  mutable newton_iters : int;
}

val new_stats : unit -> stats

type solution = {
  times : float array;
  states : Vec.t array;  (** [states.(i)] is [x(times.(i))] *)
  stats : stats;
  partial : bool;
      (** [true] when a compute budget ({!Robust.Budget}) truncated the
          series before [t1]: [times]/[states] cover only the
          integrated prefix of the requested sample grid. *)
}

(** Time series of one state component. *)
val output_component : solution -> index:int -> float array

(** Time series of [cᵀ x(t)]. *)
val output_dot : solution -> c:Vec.t -> float array

(** Uniform grid of [samples] points including both endpoints. *)
val sample_times : t0:float -> t1:float -> samples:int -> float array

(** Raised when an integrator cannot proceed (non-finite state, Newton
    stall). *)
exception Step_failure of string
