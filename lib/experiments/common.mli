(** Shared experiment plumbing: run a full model and a set of ROMs on
    the same excitation, collect outputs, relative errors and timings,
    and render the paper-style report. *)

(** One reduced-order model's run within an experiment. *)
type rom_run = {
  method_name : string;
  order : int;
  raw_moments : int;
  reduction_seconds : float;
  sim_seconds : float;
  output : float array;
  rel_error : float array;
  max_rel_error : float;
}

(** A complete experiment: the full model's transient plus every ROM
    run against it. *)
type t = {
  id : string;  (** "fig2", "fig3", ... *)
  title : string;
  n_full : int;
  input_desc : string;
  times : float array;
  full_output : float array;
  full_sim_seconds : float;
  runs : rom_run list;
}

(** [timed f] runs [f ()] and returns its result with the elapsed wall
    time in seconds. *)
val timed : (unit -> 'a) -> 'a * float

(** Simulate one QLDAE from rest and return (times, first output). *)
val simulate_output :
  ?solver:Volterra.Qldae.solver ->
  Volterra.Qldae.t ->
  input:(float -> La.Vec.t) ->
  t0:float ->
  t1:float ->
  samples:int ->
  float array * float array

(** Reduce [q] with [reduce], simulate the ROM on the same excitation,
    and collect timings and errors against [full_output]. A ROM whose
    transient diverges is reported as NaN output rather than aborting. *)
val run_reduction :
  method_name:string ->
  reduce:(Volterra.Qldae.t -> Mor.Atmor.result) ->
  ?solver:Volterra.Qldae.solver ->
  Volterra.Qldae.t ->
  input:(float -> La.Vec.t) ->
  t1:float ->
  samples:int ->
  full_output:float array ->
  rom_run

(** Run the full model once, then every named reduction against it. *)
val build :
  id:string ->
  title:string ->
  input_desc:string ->
  ?solver:Volterra.Qldae.solver ->
  Volterra.Qldae.t ->
  input:(float -> La.Vec.t) ->
  t1:float ->
  samples:int ->
  methods:(string * (Volterra.Qldae.t -> Mor.Atmor.result)) list ->
  t

(** Render the experiment report (summary lines and, unless
    [~plots:false], terminal plots of outputs and errors). *)
val report : ?plots:bool -> Format.formatter -> t -> unit

(** Write the experiment's series to [dir]/[id].csv; returns the path. *)
val to_csv : dir:string -> t -> string

(** Paper Table 1: reduction and transient times, original vs ROMs. *)
val table1_rows : Format.formatter -> t list -> unit
