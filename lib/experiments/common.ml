(* Shared experiment plumbing: run a full model and a set of ROMs on the
   same excitation, collect outputs, relative errors and timings, and
   render the paper-style report. *)

open La

type rom_run = {
  method_name : string;
  order : int;
  raw_moments : int;
  reduction_seconds : float;
  sim_seconds : float;
  output : float array;
  rel_error : float array;
  max_rel_error : float;
}

type t = {
  id : string;  (* "fig2", "fig3", ... *)
  title : string;
  n_full : int;
  input_desc : string;
  times : float array;
  full_output : float array;
  full_sim_seconds : float;
  runs : rom_run list;
}

let timed f = Obs.Clock.time f

(* Simulate one QLDAE and return the (first) output series. *)
let simulate_output ?solver (q : Volterra.Qldae.t) ~input ~t0 ~t1 ~samples =
  let sol = Volterra.Qldae.simulate ?solver q ~input ~t0 ~t1 ~samples in
  (sol.Ode.Types.times, Volterra.Qldae.output q sol)

let run_reduction ~method_name ~(reduce : Volterra.Qldae.t -> Mor.Atmor.result)
    ?solver (q : Volterra.Qldae.t) ~input ~t1 ~samples ~full_output : rom_run =
  let r = reduce q in
  (* A one-sided Galerkin ROM of a nonlinear system carries no stability
     guarantee; report a divergence instead of aborting the whole
     harness. *)
  let (_, output), sim_seconds =
    timed (fun () ->
        try simulate_output ?solver r.Mor.Atmor.rom ~input ~t0:0.0 ~t1 ~samples
        with Ode.Types.Step_failure _ ->
          ([||], Array.make (Array.length full_output) Float.nan))
  in
  let rel_error =
    Waves.Metrics.relative_error_series ~reference:full_output ~approx:output
  in
  {
    method_name;
    order = Mor.Atmor.order r;
    raw_moments = r.Mor.Atmor.raw_moments;
    reduction_seconds = r.Mor.Atmor.reduction_seconds;
    sim_seconds;
    output;
    rel_error;
    max_rel_error = Array.fold_left Float.max 0.0 rel_error;
  }

let build ~id ~title ~input_desc ?solver (q : Volterra.Qldae.t) ~input ~t1
    ~samples ~(methods : (string * (Volterra.Qldae.t -> Mor.Atmor.result)) list)
    : t =
  let (times, full_output), full_sim_seconds =
    timed (fun () -> simulate_output ?solver q ~input ~t0:0.0 ~t1 ~samples)
  in
  let runs =
    List.map
      (fun (method_name, reduce) ->
        run_reduction ~method_name ~reduce ?solver q ~input ~t1 ~samples
          ~full_output)
      methods
  in
  {
    id;
    title;
    n_full = Volterra.Qldae.dim q;
    input_desc;
    times;
    full_output;
    full_sim_seconds;
    runs;
  }

(* ---- reporting ---- *)

let report ?(plots = true) ppf (e : t) =
  Fmt.pf ppf "== %s: %s ==@." e.id e.title;
  Fmt.pf ppf "full model: %d states, transient %.2fs; input: %s@." e.n_full
    e.full_sim_seconds e.input_desc;
  List.iter
    (fun r ->
      Fmt.pf ppf
        "%-10s order %3d (from %3d moment vectors)  reduce %.2fs  sim %.3fs  \
         max rel err %.4f@."
        r.method_name r.order r.raw_moments r.reduction_seconds r.sim_seconds
        r.max_rel_error)
    e.runs;
  if plots then begin
    let series =
      ("Original", e.full_output)
      :: List.map (fun r -> (r.method_name, r.output)) e.runs
    in
    Fmt.pf ppf "%s@."
      (Waves.Asciiplot.render ~xs:e.times series);
    let errors = List.map (fun r -> (r.method_name ^ " err", r.rel_error)) e.runs in
    Fmt.pf ppf "%s@." (Waves.Asciiplot.render ~xs:e.times errors)
  end

let to_csv ~dir (e : t) =
  let header =
    "time" :: "original"
    :: List.concat_map
         (fun r -> [ r.method_name; r.method_name ^ "_relerr" ])
         e.runs
  in
  let columns =
    e.times :: e.full_output
    :: List.concat_map (fun r -> [ r.output; r.rel_error ]) e.runs
  in
  let path = Filename.concat dir (e.id ^ ".csv") in
  Waves.Csv.write ~path ~header columns;
  path

(* Paper Table 1: reduction ("Arnoldi") and transient ("ODE solve")
   times, original vs each ROM. *)
let table1_rows ppf (es : t list) =
  Fmt.pf ppf "== Table 1: runtime comparison ==@.";
  Fmt.pf ppf "%-28s %-12s %-14s %-14s@." "" "Original" "Reduced" "Reduced";
  (match es with
  | e0 :: _ ->
    let names = List.map (fun r -> r.method_name) e0.runs in
    Fmt.pf ppf "%-28s %-12s %-14s %-14s@." "" ""
      (match names with n :: _ -> "(" ^ n ^ ")" | [] -> "")
      (match names with _ :: n :: _ -> "(" ^ n ^ ")" | _ -> "")
  | [] -> ());
  List.iter
    (fun e ->
      Fmt.pf ppf "%s (n=%d)@." e.title e.n_full;
      let reduction_cells =
        List.map
          (fun r -> Printf.sprintf "%.2fs (q=%d)" r.reduction_seconds r.order)
          e.runs
      in
      let sim_cells =
        List.map (fun r -> Printf.sprintf "%.3fs" r.sim_seconds) e.runs
      in
      Fmt.pf ppf "  %-26s %-12s %s@." "reduction (\"Arnoldi\")" "--"
        (String.concat " " (List.map (Printf.sprintf "%-14s") reduction_cells));
      Fmt.pf ppf "  %-26s %-12s %s@." "transient (\"ODE solve\")"
        (Printf.sprintf "%.3fs" e.full_sim_seconds)
        (String.concat " " (List.map (Printf.sprintf "%-14s") sim_cells)))
    es
