(** The paper's four experiments (§3.1–3.4) and Table 1, parameterized
    so they can run at paper scale ([scale = 1.0]) or scaled down for
    smoke runs. *)

(** The paper's moment orders: 6 of H1, 3 of H2, 2 of H3 (§3.1). *)
val paper_orders : Mor.Atmor.orders

(** [scaled_stages ~scale full] shrinks a ladder length for smoke runs
    (never below 4 stages). *)
val scaled_stages : scale:float -> int -> int

(** Shrink an excitation amplitude along with the model so scaled-down
    ladders are not overdriven. *)
val scaled_amp : scale:float -> float -> float

(** Halve moment orders when the requested basis would exceed ~n/3 of a
    (scaled-down) model — guards smoke runs against near-full-order
    nonlinear Galerkin ROMs. *)
val cap_orders : n:int -> Mor.Atmor.orders -> Mor.Atmor.orders

(** §3.1 / Fig. 2: NLTL with voltage source (D1 term present). *)
val fig2 : ?scale:float -> ?samples:int -> unit -> Common.t

(** §3.2 / Fig. 3 + Table 1 rows: NLTL with current source, proposed vs
    NORM at the same moment orders. *)
val fig3 : ?scale:float -> ?samples:int -> unit -> Common.t

(** §3.3 / Fig. 4 + Table 1 rows: MISO RF receiver, signal + interfering
    noise, proposed vs NORM. *)
val fig4 :
  ?scale:float ->
  ?samples:int ->
  ?h3_triples:[ `All | `Diagonal ] ->
  unit ->
  Common.t

(** §3.4 / Fig. 5: ZnO varistor surge protection (cubic ODE), proposed
    method only, reported in absolute volts on the standing supply. *)
val fig5 : ?scale:float -> ?samples:int -> unit -> Common.t

(** Table 1 = timing rows of the §3.2 and §3.3 experiments. *)
val table1 : ?scale:float -> unit -> Common.t list

(** Surge input series for Fig. 5's upper panel. *)
val fig5_input_series : Common.t -> float array
